// Fault injection, retry/failover, and the degraded-mode objective:
//   * OutageSchedule construction semantics (sort + merge of overlapping,
//     adjacent, and abutting windows; binary-searched down_at; down_time);
//   * FaultInjector determinism, stationary statistics, regional
//     correlation, and the SplitMix64 stream chain;
//   * RetryPolicy / SuspicionList unit behavior;
//   * core::FailureAwareObjective: the Majority closed form and the
//     exact-enumeration path pinned against brute-force enumeration over
//     every failure set, Monte-Carlo agreement, degenerate p = 0 equality
//     with ClosestStrategyObjective, and the supports_delta() fallback;
//   * the engine's retry/failover accounting invariants, and the
//     closed-loop validation band: FailureAwareObjective's prediction vs
//     sim/engine measurements under injected faults at rho <= 0.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/delta_eval.hpp"
#include "core/failure_objective.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/retry.hpp"
#include "sim/service_queue.hpp"

namespace qp {
namespace {

// --- OutageSchedule window semantics ---------------------------------------

TEST(OutageSchedule, MergesOverlappingAdjacentAndAbuttingWindows) {
  const std::vector<sim::ServerOutage> outages = {
      {0, 15.0, 30.0},  // Overlaps [10, 20).
      {0, 10.0, 20.0},
      {0, 30.0, 40.0},  // Abuts [15, 30) exactly at 30.
      {0, 50.0, 60.0},  // Disjoint.
      {1, 5.0, 6.0},
  };
  const sim::OutageSchedule schedule{outages, 2};
  const auto windows = schedule.windows(0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].first, 10.0);
  EXPECT_DOUBLE_EQ(windows[0].second, 40.0);
  EXPECT_DOUBLE_EQ(windows[1].first, 50.0);
  EXPECT_DOUBLE_EQ(windows[1].second, 60.0);

  EXPECT_FALSE(schedule.down_at(0, 9.999));
  EXPECT_TRUE(schedule.down_at(0, 10.0));  // Start inclusive.
  EXPECT_TRUE(schedule.down_at(0, 30.0));  // The seam is covered.
  EXPECT_TRUE(schedule.down_at(0, 39.999));
  EXPECT_FALSE(schedule.down_at(0, 40.0));  // End exclusive.
  EXPECT_FALSE(schedule.down_at(0, 45.0));
  EXPECT_TRUE(schedule.down_at(0, 55.0));
  EXPECT_FALSE(schedule.down_at(0, 60.0));
  EXPECT_TRUE(schedule.down_at(1, 5.5));
  EXPECT_FALSE(schedule.down_at(1, 6.0));
}

TEST(OutageSchedule, DownTimeClipsToTheQueriedRange) {
  const std::vector<sim::ServerOutage> outages = {{0, 10.0, 40.0}, {0, 50.0, 60.0}};
  const sim::OutageSchedule schedule{outages, 1};
  EXPECT_DOUBLE_EQ(schedule.down_time(0, 0.0, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(schedule.down_time(0, 35.0, 55.0), 10.0);  // 5 + 5.
  EXPECT_DOUBLE_EQ(schedule.down_time(0, 41.0, 49.0), 0.0);
  EXPECT_DOUBLE_EQ(schedule.down_time(0, 20.0, 30.0), 10.0);  // Fully inside.
}

TEST(OutageSchedule, EmptyAndOutOfRangeSitesAreAlwaysUp) {
  const sim::OutageSchedule empty;
  EXPECT_FALSE(empty.down_at(0, 1.0));
  EXPECT_TRUE(empty.windows(0).empty());
  const std::vector<sim::ServerOutage> one = {{0, 1.0, 2.0}};
  const sim::OutageSchedule schedule{one, 3};
  EXPECT_TRUE(schedule.windows(2).empty());
  EXPECT_FALSE(schedule.down_at(2, 1.5));
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjector, ForDownProbabilityHitsTheTarget) {
  const sim::FaultProcess process = sim::FaultProcess::for_down_probability(0.2, 500.0);
  EXPECT_DOUBLE_EQ(process.mttr_ms, 500.0);
  EXPECT_DOUBLE_EQ(process.mttf_ms, 2'000.0);
  EXPECT_DOUBLE_EQ(process.steady_state_down(), 0.2);
  EXPECT_THROW((void)sim::FaultProcess::for_down_probability(0.0, 500.0),
               std::invalid_argument);
  EXPECT_THROW((void)sim::FaultProcess::for_down_probability(1.0, 500.0),
               std::invalid_argument);
  EXPECT_THROW((void)sim::FaultProcess::for_down_probability(0.2, 0.0),
               std::invalid_argument);
}

TEST(FaultInjector, SchedulesAreDeterministicInTheSeed) {
  sim::FaultInjectorConfig config;
  config.seed = 314;
  config.horizon_ms = 10'000.0;
  config.site = sim::FaultProcess::for_down_probability(0.1, 400.0);
  const auto a = sim::FaultInjector{config}.schedule(20);
  const auto b = sim::FaultInjector{config}.schedule(20);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_DOUBLE_EQ(a[i].start_ms, b[i].start_ms);
    EXPECT_DOUBLE_EQ(a[i].end_ms, b[i].end_ms);
  }
  config.seed = 315;
  const auto c = sim::FaultInjector{config}.schedule(20);
  bool different = c.size() != a.size();
  for (std::size_t i = 0; !different && i < a.size(); ++i) {
    different = a[i].start_ms != c[i].start_ms;
  }
  EXPECT_TRUE(different);
}

TEST(FaultInjector, StationaryDownFractionMatchesTheModel) {
  // Aggregate down time over many independent site processes converges to
  // the stationary probability — and holds from time zero (stationary
  // start), checked by also measuring only the first fifth of the horizon.
  sim::FaultInjectorConfig config;
  config.seed = 2718;
  config.horizon_ms = 120'000.0;
  config.site = sim::FaultProcess::for_down_probability(0.2, 500.0);
  const sim::FaultInjector injector{config};
  const std::size_t sites = 200;
  const sim::OutageSchedule oracle = injector.oracle(sites);
  double down_full = 0.0;
  double down_early = 0.0;
  for (std::size_t site = 0; site < sites; ++site) {
    down_full += oracle.down_time(site, 0.0, config.horizon_ms);
    down_early += oracle.down_time(site, 0.0, config.horizon_ms / 5.0);
  }
  const double sites_d = static_cast<double>(sites);
  EXPECT_NEAR(down_full / (sites_d * config.horizon_ms), 0.2, 0.02);
  EXPECT_NEAR(down_early / (sites_d * config.horizon_ms / 5.0), 0.2, 0.04);
  EXPECT_DOUBLE_EQ(injector.steady_state_down(), 0.2);
}

TEST(FaultInjector, RegionalFailuresTakeWholeRegionsDownTogether) {
  sim::FaultInjectorConfig config;
  config.seed = 99;
  config.horizon_ms = 50'000.0;
  config.regional = sim::FaultProcess::for_down_probability(0.15, 1'000.0);
  config.site_region = {0, 0, 0, 1, 1, 1};
  const sim::OutageSchedule oracle = sim::FaultInjector{config}.oracle(6);
  // Sites of one region share bitwise-identical windows.
  const auto first = oracle.windows(0);
  ASSERT_FALSE(first.empty());
  for (std::size_t site : {1u, 2u}) {
    const auto windows = oracle.windows(site);
    ASSERT_EQ(windows.size(), first.size()) << site;
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_DOUBLE_EQ(windows[i].first, first[i].first);
      EXPECT_DOUBLE_EQ(windows[i].second, first[i].second);
    }
  }
  // Distinct regions run distinct streams.
  const auto other = oracle.windows(3);
  bool different = other.size() != first.size();
  for (std::size_t i = 0; !different && i < first.size(); ++i) {
    different = other[i].first != first[i].first;
  }
  EXPECT_TRUE(different);
}

TEST(FaultInjector, ValidationRejectsBadConfigs) {
  sim::FaultInjectorConfig config;
  config.horizon_ms = 0.0;
  EXPECT_THROW(sim::FaultInjector{config}, std::invalid_argument);
  config = {};
  config.site = {100.0, 0.0};  // Enabled but unrepairable.
  EXPECT_THROW(sim::FaultInjector{config}, std::invalid_argument);
  config = {};
  config.regional = sim::FaultProcess::for_down_probability(0.1, 100.0);
  config.site_region = {0, 0};  // Shorter than the site count below.
  EXPECT_THROW((void)sim::FaultInjector{config}.schedule(5), std::invalid_argument);
}

TEST(FaultInjector, StreamSeedsFollowTheSplitMixChain) {
  // fault_stream_seed(seed, k) must equal the (k+1)-th SplitMix64 output of
  // the chain seeded by `seed` — the O(1) jump the injector relies on for
  // order-independent per-site streams.
  const std::uint64_t seed = 0xfeedf00dULL;
  std::uint64_t state = seed;
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    const std::uint64_t expected = common::splitmix64(state);
    EXPECT_EQ(sim::fault_stream_seed(seed, stream), expected) << stream;
  }
}

// --- RetryPolicy / SuspicionList -------------------------------------------

TEST(RetryPolicy, ValidatesAndDoublesBackoffUpToTheCap) {
  sim::RetryPolicy policy;
  policy.timeout_ms = 100.0;
  policy.backoff_base_ms = 10.0;
  policy.backoff_max_ms = 35.0;
  policy.validate();
  common::Rng rng{1};
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1, rng), 10.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(2, rng), 20.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(3, rng), 35.0);  // Capped.
  EXPECT_DOUBLE_EQ(policy.backoff_delay(9, rng), 35.0);

  policy.jitter_frac = 0.5;
  const double jittered = policy.backoff_delay(2, rng);
  EXPECT_GE(jittered, 20.0);
  EXPECT_LE(jittered, 30.0);

  sim::RetryPolicy bad;
  bad.timeout_ms = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.jitter_frac = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(SuspicionList, SuspicionsExpireAfterTheTtl) {
  sim::SuspicionList suspicion{4, 50.0};
  EXPECT_FALSE(suspicion.suspected(3, 0.0));
  suspicion.suspect(3, 100.0);
  EXPECT_TRUE(suspicion.suspected(3, 100.0));
  EXPECT_TRUE(suspicion.suspected(3, 149.9));
  EXPECT_FALSE(suspicion.suspected(3, 150.0));
  EXPECT_FALSE(suspicion.suspected(2, 100.0));  // Never suspected.
  suspicion.suspect(3, 200.0);  // Re-suspicion rearms the expiry.
  EXPECT_TRUE(suspicion.suspected(3, 249.0));
}

// --- FailureAwareObjective -------------------------------------------------

/// Brute-force reference: enumerate every up/down state of the support
/// sites, and per client take the minimum over quorums of the max element x
/// among fully-live quorums. Written independently of the objective's
/// sorted-scan evaluators.
struct BruteForce {
  double objective = 0.0;
  double response_mass = 0.0;  // avg_v E[R ; available].
  double unavailability = 0.0;
};

BruteForce brute_force(const net::LatencyMatrix& matrix,
                       const quorum::QuorumSystem& system,
                       const core::Placement& placement, double alpha, double p,
                       double penalty) {
  const std::vector<quorum::Quorum> quorums = system.enumerate_quorums();
  const std::vector<std::size_t> support = placement.support_set();
  const std::vector<double> load =
      core::site_loads_closest(matrix, system, placement, std::span<const double>{});
  BruteForce result;
  const std::size_t clients = matrix.size();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << support.size()); ++mask) {
    double prob = 1.0;
    for (std::size_t i = 0; i < support.size(); ++i) {
      prob *= ((mask >> i) & 1U) != 0 ? p : 1.0 - p;
    }
    std::vector<bool> site_down(matrix.size(), false);
    for (std::size_t i = 0; i < support.size(); ++i) {
      site_down[support[i]] = ((mask >> i) & 1U) != 0;
    }
    for (std::size_t v = 0; v < clients; ++v) {
      double best = std::numeric_limits<double>::infinity();
      for (const quorum::Quorum& quorum : quorums) {
        double max_x = 0.0;
        bool live = true;
        for (std::size_t u : quorum) {
          const std::size_t site = placement.site_of[u];
          if (site_down[site]) {
            live = false;
            break;
          }
          max_x = std::max(max_x, matrix.rtt(v, site) + alpha * load[site]);
        }
        if (live) best = std::min(best, max_x);
      }
      const double w = prob / static_cast<double>(clients);
      if (std::isfinite(best)) {
        result.response_mass += w * best;
      } else {
        result.unavailability += w;
      }
    }
  }
  result.objective = result.response_mass + result.unavailability * penalty;
  return result;
}

TEST(FailureAwareObjective, MajorityClosedFormMatchesBruteForce) {
  const net::LatencyMatrix matrix = net::small_synth(12, 42);
  const quorum::MajorityQuorum system{9, 5};
  core::Placement placement;
  placement.site_of = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  for (double p : {0.05, 0.15, 0.4}) {
    core::FailureModel model;
    model.site_failure_prob = p;
    const core::FailureAwareObjective objective{0.02, model};
    const auto detailed = objective.evaluate_detailed(matrix, system, placement);
    const BruteForce reference =
        brute_force(matrix, system, placement, 0.02, p,
                    objective.options().unavailable_penalty_ms);
    EXPECT_NEAR(detailed.objective_ms, reference.objective, 1e-9) << p;
    EXPECT_NEAR(detailed.unavailability, reference.unavailability, 1e-12) << p;
  }
}

TEST(FailureAwareObjective, GridEnumerationMatchesBruteForce) {
  const net::LatencyMatrix matrix = net::small_synth(12, 42);
  const quorum::GridQuorum system{3};
  core::Placement placement;
  placement.site_of = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  core::FailureModel model;
  model.site_failure_prob = 0.1;
  const core::FailureAwareObjective objective{0.0, model};
  const auto detailed = objective.evaluate_detailed(matrix, system, placement);
  const BruteForce reference = brute_force(matrix, system, placement, 0.0, 0.1,
                                           objective.options().unavailable_penalty_ms);
  EXPECT_NEAR(detailed.objective_ms, reference.objective, 1e-9);
  EXPECT_NEAR(detailed.unavailability, reference.unavailability, 1e-12);
}

TEST(FailureAwareObjective, ManyToOnePlacementFailsColocatedElementsTogether) {
  // Two elements on one site live or die together; the exact-enumeration
  // path must track site states, not element states.
  const net::LatencyMatrix matrix = net::small_synth(8, 7);
  const quorum::GridQuorum system{2};  // 2x2 grid, 4 elements.
  core::Placement placement;
  placement.site_of = {0, 1, 0, 2};  // Elements 0 and 2 share site 0.
  core::FailureModel model;
  model.site_failure_prob = 0.2;
  const core::FailureAwareObjective objective{0.0, model};
  const auto detailed = objective.evaluate_detailed(matrix, system, placement);
  const BruteForce reference = brute_force(matrix, system, placement, 0.0, 0.2,
                                           objective.options().unavailable_penalty_ms);
  EXPECT_NEAR(detailed.objective_ms, reference.objective, 1e-9);
  EXPECT_NEAR(detailed.unavailability, reference.unavailability, 1e-12);
}

TEST(FailureAwareObjective, MonteCarloAgreesWithExactEnumeration) {
  const net::LatencyMatrix matrix = net::small_synth(12, 42);
  const quorum::GridQuorum system{3};
  core::Placement placement;
  placement.site_of = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  core::FailureModel model;
  model.site_failure_prob = 0.1;
  const core::FailureAwareObjective exact{0.0, model};
  core::FailureAwareOptions options;
  options.exact_site_limit = 0;  // Force the Monte-Carlo path.
  options.mc_samples = 50'000;
  const core::FailureAwareObjective sampled{0.0, model, options};
  const auto a = exact.evaluate_detailed(matrix, system, placement);
  const auto b = sampled.evaluate_detailed(matrix, system, placement);
  EXPECT_NEAR(b.objective_ms, a.objective_ms, 0.02 * a.objective_ms);
  EXPECT_NEAR(b.unavailability, a.unavailability, 0.01);
  // Common random numbers: repeated evaluation is bit-identical.
  const auto c = sampled.evaluate_detailed(matrix, system, placement);
  EXPECT_DOUBLE_EQ(b.objective_ms, c.objective_ms);
}

TEST(FailureAwareObjective, ZeroFailureProbabilityEqualsClosestObjective) {
  const net::LatencyMatrix matrix = net::small_synth(12, 42);
  core::Placement placement;
  placement.site_of = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  const core::FailureAwareObjective fault_aware{0.05, core::FailureModel{}};
  const core::ClosestStrategyObjective closest{0.05};
  const quorum::GridQuorum grid{3};
  const quorum::MajorityQuorum majority{9, 5};
  EXPECT_DOUBLE_EQ(fault_aware.evaluate(matrix, grid, placement),
                   closest.evaluate(matrix, grid, placement));
  EXPECT_DOUBLE_EQ(fault_aware.evaluate(matrix, majority, placement),
                   closest.evaluate(matrix, majority, placement));
  const auto detailed = fault_aware.evaluate_detailed(matrix, grid, placement);
  EXPECT_DOUBLE_EQ(detailed.unavailability, 0.0);
}

TEST(FailureAwareObjective, SingletonUnavailabilityIsTheSiteFailureProbability) {
  const net::LatencyMatrix matrix = net::small_synth(8, 7);
  const quorum::SingletonQuorum system;
  core::Placement placement;
  placement.site_of = {3};
  core::FailureModel model;
  model.site_failure_prob = 0.1;
  const core::FailureAwareObjective objective{0.0, model};
  const auto detailed = objective.evaluate_detailed(matrix, system, placement);
  EXPECT_NEAR(detailed.unavailability, 0.1, 1e-12);
}

TEST(FailureAwareObjective, RegionalCorrelationSeparatesSpreadFromColocated) {
  // Under pure regional failures a placement colocated in one region is
  // unavailable whenever that region is; spreading across regions keeps
  // some quorum alive more often. I.i.d. site failures cannot see this
  // difference — the whole point of the correlated term.
  const net::LatencyMatrix matrix = net::small_synth(8, 11);
  const quorum::MajorityQuorum system{3, 2};
  core::FailureModel model;
  model.region_failure_prob = 0.1;
  model.site_region = {0, 0, 0, 0, 1, 1, 2, 2};
  core::FailureAwareOptions options;
  options.mc_samples = 40'000;
  const core::FailureAwareObjective objective{0.0, model, options};
  core::Placement colocated;
  colocated.site_of = {0, 1, 2};  // All of region 0.
  core::Placement spread;
  spread.site_of = {0, 4, 6};  // One site in each region.
  const auto c = objective.evaluate_detailed(matrix, system, colocated);
  const auto s = objective.evaluate_detailed(matrix, system, spread);
  EXPECT_NEAR(c.unavailability, 0.1, 0.01);  // Down iff region 0 is down.
  // Spread: down when at least two of three regions are down, ~0.028.
  EXPECT_LT(s.unavailability, 0.5 * c.unavailability);
}

TEST(FailureAwareObjective, ValidationRejectsBadInputs) {
  core::FailureModel model;
  model.site_failure_prob = 1.0;
  EXPECT_THROW((core::FailureAwareObjective{0.0, model}), std::invalid_argument);
  model = {};
  model.site_failure_prob = -0.1;
  EXPECT_THROW((core::FailureAwareObjective{0.0, model}), std::invalid_argument);
  model = {};
  core::FailureAwareOptions options;
  options.mc_samples = 0;
  EXPECT_THROW((core::FailureAwareObjective{0.0, model, options}),
               std::invalid_argument);
  // Regional model with too few region ids for the matrix.
  const net::LatencyMatrix matrix = net::small_synth(8, 7);
  model = {};
  model.region_failure_prob = 0.1;
  model.site_region = {0, 1};
  const core::FailureAwareObjective objective{0.0, model};
  const quorum::MajorityQuorum system{3, 2};
  core::Placement placement;
  placement.site_of = {0, 1, 2};
  EXPECT_THROW((void)objective.evaluate_detailed(matrix, system, placement),
               std::invalid_argument);
}

TEST(FailureAwareObjective, DeltaEvaluatorRefusesAndLocalSearchFallsBack) {
  const net::LatencyMatrix matrix = net::small_synth(10, 5);
  const quorum::MajorityQuorum system{5, 3};
  core::FailureModel model;
  model.site_failure_prob = 0.1;
  const core::FailureAwareObjective objective{0.01, model};
  EXPECT_FALSE(objective.supports_delta());
  core::Placement placement;
  placement.site_of = {0, 1, 2, 3, 4};
  EXPECT_THROW((core::DeltaEvaluator{matrix, system, placement, objective}),
               std::invalid_argument);
  // local_search_placement silently falls back to the Naive engine and
  // still improves (or at least preserves) the failure-aware objective.
  core::LocalSearchOptions options;
  options.objective = &objective;
  const core::LocalSearchResult result =
      core::local_search_placement(matrix, system, placement, options);
  EXPECT_TRUE(result.placement.one_to_one());
  EXPECT_LE(result.objective, objective.evaluate(matrix, system, placement) + 1e-9);
}

// --- Engine retry/failover accounting --------------------------------------

sim::EngineConfig fault_engine_config() {
  sim::EngineConfig config;
  config.strategy = sim::EngineStrategy::Closest;
  config.warmup_ms = 200.0;
  config.duration_ms = 2'000.0;
  config.replications = 2;
  config.master_seed = 7;
  // Above the topology's worst quorum RTT (small_synth tops out ~210 ms),
  // so live attempts never time out; crashed attempts retry after 400 ms.
  config.retry.timeout_ms = 400.0;
  config.retry.max_attempts = 3;
  return config;
}

TEST(EngineRetry, AccountingInvariantHoldsUnderFaultStorms) {
  const net::LatencyMatrix matrix = net::small_synth(10, 13);
  const quorum::MajorityQuorum system{5, 3};
  const core::Placement placement =
      core::best_majority_placement(matrix, system).placement;
  const std::vector<double> rates(10, 0.02);
  sim::EngineConfig config = fault_engine_config();
  sim::FaultInjectorConfig fault;
  fault.seed = 31;
  fault.horizon_ms = config.warmup_ms + config.duration_ms;
  fault.site = sim::FaultProcess::for_down_probability(0.3, 120.0);
  config.outages = sim::FaultInjector{fault}.schedule(10);
  config.retry.backoff_base_ms = 10.0;
  config.retry.jitter_frac = 0.25;
  for (sim::FailoverMode mode : {sim::FailoverMode::None, sim::FailoverMode::Suspicion,
                                 sim::FailoverMode::Oracle}) {
    config.failover = mode;
    const sim::EngineResult result =
        run_engine(matrix, system, placement, rates, config);
    EXPECT_EQ(result.issued, result.completed + result.failed + result.abandoned)
        << static_cast<int>(mode);
    EXPECT_EQ(result.failed, 0u);  // Retry mode: losses retry, never fail.
    EXPECT_GT(result.retries, 0u);
    EXPECT_GE(result.unavailability, 0.0);
    EXPECT_LE(result.unavailability, 1.0);
    EXPECT_LE(result.retried_response.count(), result.response.count());
    // The degraded percentile folds give-up waits into the served tail, so
    // it can never fall below the served-only percentile.
    EXPECT_GE(result.degraded_p99_ms, result.p99_ms);
    for (const sim::ReplicationResult& replication : result.replications) {
      EXPECT_EQ(replication.issued,
                replication.completed + replication.failed + replication.abandoned);
    }
  }
}

TEST(EngineRetry, PermanentTotalOutageAbandonsEveryRequest) {
  const net::LatencyMatrix matrix = net::small_synth(8, 3);
  const quorum::MajorityQuorum system{3, 2};
  core::Placement placement;
  placement.site_of = {0, 1, 2};
  const std::vector<double> rates(8, 0.01);
  sim::EngineConfig config = fault_engine_config();
  for (std::size_t site : {0u, 1u, 2u}) {
    config.outages.push_back({site, 0.0, 1.0e9});
  }
  const sim::EngineResult result = run_engine(matrix, system, placement, rates, config);
  EXPECT_GT(result.issued, 0u);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_EQ(result.abandoned, result.issued);
  EXPECT_DOUBLE_EQ(result.unavailability, 1.0);
  // Survivorship bias made visible: the served-only p99 has no samples at
  // all, while the degraded p99 reports the give-up chain every client
  // actually sat through (3 timeouts back to back, zero backoff).
  EXPECT_DOUBLE_EQ(result.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.degraded_p99_ms, 3 * 400.0);
}

TEST(EngineRetry, OracleFailoverRoutesAroundAPermanentCrash) {
  // One support site down for the whole run. Without failover, closest
  // clients whose quorum contains the victim retry into the same dead
  // quorum and abandon; Oracle re-choice completes them instead.
  const net::LatencyMatrix matrix = net::small_synth(10, 17);
  const quorum::MajorityQuorum system{5, 3};
  const core::Placement placement =
      core::best_majority_placement(matrix, system).placement;
  const std::vector<double> rates(10, 0.02);
  sim::EngineConfig config = fault_engine_config();
  config.outages = {{placement.site_of[0], 0.0, 1.0e9}};
  config.failover = sim::FailoverMode::None;
  const sim::EngineResult blind = run_engine(matrix, system, placement, rates, config);
  config.failover = sim::FailoverMode::Oracle;
  const sim::EngineResult oracle = run_engine(matrix, system, placement, rates, config);
  EXPECT_GT(blind.abandoned, 0u);
  EXPECT_EQ(oracle.abandoned, 0u);
  EXPECT_GT(oracle.completed, blind.completed);
  // Nothing unserved under Oracle failover -> the degraded percentile
  // degenerates to the served one.
  EXPECT_DOUBLE_EQ(oracle.degraded_p99_ms, oracle.p99_ms);
  // Suspicion failover sits between: the first attempt still walks into
  // the outage, the retry routes around it.
  config.failover = sim::FailoverMode::Suspicion;
  const sim::EngineResult suspicion =
      run_engine(matrix, system, placement, rates, config);
  EXPECT_EQ(suspicion.abandoned, 0u);
  EXPECT_GT(suspicion.retries, oracle.retries);
}

TEST(EngineRetry, ConfigValidation) {
  const net::LatencyMatrix matrix = net::small_synth(8, 3);
  const quorum::MajorityQuorum system{3, 2};
  core::Placement placement;
  placement.site_of = {0, 1, 2};
  const std::vector<double> rates(8, 0.01);
  sim::EngineConfig config;
  config.failover = sim::FailoverMode::Oracle;  // Failover needs the retry layer.
  EXPECT_THROW((void)run_engine(matrix, system, placement, rates, config),
               std::invalid_argument);
  config = {};
  config.retry.timeout_ms = -5.0;
  EXPECT_THROW((void)run_engine(matrix, system, placement, rates, config),
               std::invalid_argument);
  config = {};
  config.retry.timeout_ms = 100.0;
  config.failover = sim::FailoverMode::Suspicion;
  config.suspicion_ttl_ms = 0.0;
  EXPECT_THROW((void)run_engine(matrix, system, placement, rates, config),
               std::invalid_argument);
}

// --- Closed-loop validation: objective vs engine under faults ---------------

TEST(FaultValidation, ObjectivePredictsTheEngineUnderInjectedFaults) {
  // The acceptance band of this PR: on Planetlab-50 at rho = 0.3 with
  // every site cycling through exponential crash/recovery (stationary
  // down probability 8%, MTTR 2.5 s) and Oracle failover, the
  // FailureAwareObjective's conditional mean must predict the engine.
  // Bands pinned from measurement with margin:
  //   * first-attempt completions (the steady-state re-choice response the
  //     model prices; measured within 5%): 8%;
  //   * all completions (including the detection/timeout transient retried
  //     requests pay, which the model deliberately excludes; measured
  //     within 8.2%): 12%.
  const net::LatencyMatrix matrix = net::planetlab50_synth();
  const double service = 1.0;
  struct System {
    const quorum::QuorumSystem* system;
    core::Placement placement;
  };
  const quorum::GridQuorum grid{7};
  const quorum::MajorityQuorum majority{49, 25};
  const System systems[] = {
      {&grid, core::best_grid_placement(matrix, 7).placement},
      {&majority, core::best_majority_placement(matrix, majority).placement},
  };
  for (const System& sut : systems) {
    const quorum::QuorumSystem& system = *sut.system;
    const core::Placement& placement = sut.placement;
    const std::vector<double> site_load = core::site_loads_closest(
        matrix, system, placement, std::span<const double>{});
    const std::vector<double> rates = sim::scale_rates_to_peak_utilization(
        std::vector<double>(matrix.size(), 1.0), site_load, service, 0.3);
    const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
    const double alpha = total * service * service;

    sim::EngineConfig config;
    config.strategy = sim::EngineStrategy::Closest;
    config.master_seed = 99;
    config.replications = 3;
    sim::FaultInjectorConfig fault;
    fault.seed = 777;
    fault.horizon_ms = config.warmup_ms + config.duration_ms;
    fault.site = sim::FaultProcess::for_down_probability(0.08, 2'500.0);
    const sim::FaultInjector injector{fault};
    config.outages = injector.schedule(matrix.size());
    const std::vector<std::size_t> support = placement.support_set();
    double max_rtt = 0.0;
    for (std::size_t v = 0; v < matrix.size(); ++v) {
      for (std::size_t w : support) max_rtt = std::max(max_rtt, matrix.rtt(v, w));
    }
    config.retry.timeout_ms = 1.25 * max_rtt + 25.0 * service;
    config.retry.max_attempts = 4;
    config.failover = sim::FailoverMode::Oracle;
    const sim::EngineResult result =
        run_engine(matrix, system, placement, rates, config);

    core::FailureModel model;
    model.site_failure_prob = injector.steady_state_down();
    core::FailureAwareOptions options;
    options.mc_samples = 20'000;
    const core::FailureAwareObjective objective{alpha, model, options};
    const auto detailed = objective.evaluate_detailed(matrix, system, placement);
    const double analytic = detailed.expected_response_ms + service;

    EXPECT_EQ(result.issued, result.completed + result.failed + result.abandoned);
    EXPECT_GT(result.retries, 0u) << system.name();  // Faults really fired.

    const double full = result.mean_response_ms;
    EXPECT_NEAR(full, analytic, 0.12 * analytic) << system.name();
    const double first_count = static_cast<double>(result.response.count()) -
                               static_cast<double>(result.retried_response.count());
    ASSERT_GT(first_count, 0.0);
    const double first_mean = (result.response.mean() * result.response.count() -
                               result.retried_response.mean() *
                                   result.retried_response.count()) /
                              first_count;
    EXPECT_NEAR(first_mean, analytic, 0.08 * analytic) << system.name();
    EXPECT_NEAR(result.unavailability, detailed.unavailability, 0.02)
        << system.name();
  }
}

}  // namespace
}  // namespace qp
