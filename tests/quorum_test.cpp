#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/order_stats.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/singleton.hpp"

namespace qp::quorum {
namespace {

// ------------------------------------------------------------ Order stats

TEST(OrderStats, DistributionSumsToOne) {
  const std::vector<double> values{3.0, 1.0, 4.0, 1.5, 9.0, 2.6};
  for (std::size_t q = 1; q <= values.size(); ++q) {
    const auto pmf = max_order_distribution(values, q);
    double total = 0.0;
    for (double p : pmf) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12) << "q=" << q;
  }
}

TEST(OrderStats, FullSubsetIsMaximum) {
  const std::vector<double> values{3.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(expected_max_uniform_subset(values, 3), 4.0);
}

TEST(OrderStats, SingletonSubsetIsMean) {
  const std::vector<double> values{2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(expected_max_uniform_subset(values, 1), 5.0);
}

TEST(OrderStats, MatchesExhaustiveEnumeration) {
  const std::vector<double> values{5.0, 2.0, 8.0, 3.0, 7.0, 1.0, 4.0};
  for (std::size_t q = 1; q <= values.size(); ++q) {
    double total = 0.0;
    std::size_t count = 0;
    for (const auto& subset : common::all_subsets(values.size(), q)) {
      double max_value = 0.0;
      for (std::size_t i : subset) max_value = std::max(max_value, values[i]);
      total += max_value;
      ++count;
    }
    EXPECT_NEAR(expected_max_uniform_subset(values, q), total / count, 1e-10) << "q=" << q;
  }
}

TEST(OrderStats, HandlesTies) {
  const std::vector<double> values{2.0, 2.0, 2.0, 5.0};
  // P(max = 5) = C(3,1)... for q=2: subsets containing 5: 3 of 6 -> E = (3*5 + 3*2)/6.
  EXPECT_NEAR(expected_max_uniform_subset(values, 2), 3.5, 1e-12);
}

TEST(OrderStats, LargeUniverseIsFinite) {
  std::vector<double> values(161);
  common::Rng rng{5};
  for (double& v : values) v = rng.uniform(10.0, 300.0);
  const double e = expected_max_uniform_subset(values, 81);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_GE(e, 10.0);
  EXPECT_LE(e, 300.0);
}

TEST(OrderStats, MonteCarloAgreement) {
  std::vector<double> values(30);
  common::Rng rng{6};
  for (double& v : values) v = rng.uniform(0.0, 100.0);
  const std::size_t q = 11;
  const double analytic = expected_max_uniform_subset(values, q);
  double total = 0.0;
  const int trials = 40'000;
  for (int trial = 0; trial < trials; ++trial) {
    double max_value = 0.0;
    for (std::size_t i : rng.sample_without_replacement(values.size(), q)) {
      max_value = std::max(max_value, values[i]);
    }
    total += max_value;
  }
  EXPECT_NEAR(total / trials, analytic, 1.0);
}

TEST(OrderStats, RejectsBadSubsetSize) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_THROW((void)expected_max_uniform_subset(values, 0), std::invalid_argument);
  EXPECT_THROW((void)expected_max_uniform_subset(values, 3), std::invalid_argument);
}

// --------------------------------------------------------------- Majority

TEST(Majority, ConstructionRules) {
  EXPECT_NO_THROW(MajorityQuorum(5, 3));
  EXPECT_THROW(MajorityQuorum(5, 0), std::invalid_argument);
  EXPECT_THROW(MajorityQuorum(5, 6), std::invalid_argument);
  EXPECT_THROW(MajorityQuorum(6, 3), std::invalid_argument);  // 2q == n: disjoint possible.
}

TEST(Majority, CountsAndLoads) {
  const MajorityQuorum m{5, 3};
  EXPECT_DOUBLE_EQ(m.quorum_count(), 10.0);
  EXPECT_DOUBLE_EQ(m.optimal_load(), 0.6);
  for (double load : m.uniform_load()) EXPECT_DOUBLE_EQ(load, 0.6);
}

TEST(Majority, EnumerationMatchesCount) {
  const MajorityQuorum m{6, 4};
  const auto quorums = m.enumerate_quorums(100);
  EXPECT_EQ(quorums.size(), 15u);
  EXPECT_TRUE(m.verify_intersection());
}

TEST(Majority, EnumerationThrowsWhenHuge) {
  const MajorityQuorum m{161, 81};
  EXPECT_FALSE(m.enumerable());
  EXPECT_THROW((void)m.enumerate_quorums(100'000), std::domain_error);
}

TEST(Majority, BestQuorumIsSmallestValues) {
  const MajorityQuorum m{5, 3};
  const std::vector<double> values{9.0, 1.0, 5.0, 2.0, 7.0};
  const Quorum best = m.best_quorum(values);
  EXPECT_EQ(best, (Quorum{1, 2, 3}));
}

TEST(Majority, BestQuorumTieBreaksDeterministically) {
  const MajorityQuorum m{4, 3};
  const std::vector<double> values{2.0, 2.0, 2.0, 2.0};
  EXPECT_EQ(m.best_quorum(values), (Quorum{0, 1, 2}));
}

TEST(Majority, ExpectedMaxMatchesEnumeration) {
  const MajorityQuorum m{7, 4};
  const std::vector<double> values{5.0, 2.0, 8.0, 3.0, 7.0, 1.0, 4.0};
  double total = 0.0;
  const auto quorums = m.enumerate_quorums(100);
  for (const Quorum& quorum : quorums) {
    double max_value = 0.0;
    for (std::size_t u : quorum) max_value = std::max(max_value, values[u]);
    total += max_value;
  }
  EXPECT_NEAR(m.expected_max_uniform(values), total / quorums.size(), 1e-10);
}

TEST(Majority, SampledQuorumsAreValid) {
  const MajorityQuorum m{21, 17};
  common::Rng rng{8};
  for (const Quorum& quorum : m.sample_quorums(50, rng)) {
    EXPECT_EQ(quorum.size(), 17u);
    EXPECT_TRUE(std::is_sorted(quorum.begin(), quorum.end()));
    EXPECT_LT(quorum.back(), 21u);
  }
}

TEST(MajorityFamilies, UniverseSizesAndNames) {
  EXPECT_EQ(family_universe(MajorityFamily::SimpleMajority, 3), 7u);
  EXPECT_EQ(family_universe(MajorityFamily::ByzantineMajority, 3), 10u);
  EXPECT_EQ(family_universe(MajorityFamily::QuThreshold, 3), 16u);
  EXPECT_EQ(family_name(MajorityFamily::SimpleMajority), "(t+1,2t+1) Maj");

  for (std::size_t t = 1; t <= 4; ++t) {
    const auto simple = make_majority(MajorityFamily::SimpleMajority, t);
    EXPECT_EQ(simple.universe_size(), 2 * t + 1);
    EXPECT_EQ(simple.quorum_size(), t + 1);
    const auto byz = make_majority(MajorityFamily::ByzantineMajority, t);
    EXPECT_EQ(byz.universe_size(), 3 * t + 1);
    EXPECT_EQ(byz.quorum_size(), 2 * t + 1);
    const auto qu = make_majority(MajorityFamily::QuThreshold, t);
    EXPECT_EQ(qu.universe_size(), 5 * t + 1);
    EXPECT_EQ(qu.quorum_size(), 4 * t + 1);
  }
  EXPECT_THROW((void)make_majority(MajorityFamily::SimpleMajority, 0), std::invalid_argument);
}

// Byzantine-intersection property sweep: |Q1 ^ Q2| - t > t for the
// Byzantine families (quorum intersections survive t liars).
class MajorityIntersectionSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(MajorityIntersectionSweep, MinimumIntersectionSize) {
  const auto [family_index, t] = GetParam();
  const auto family = static_cast<MajorityFamily>(family_index);
  const MajorityQuorum m = make_majority(family, t);
  // For threshold systems the minimum intersection of two quorums is 2q - n.
  const std::size_t q = m.quorum_size();
  const std::size_t n = m.universe_size();
  const std::size_t min_intersection = 2 * q - n;
  switch (family) {
    case MajorityFamily::SimpleMajority:
      EXPECT_GE(min_intersection, 1u);
      break;
    case MajorityFamily::ByzantineMajority:
      EXPECT_GE(min_intersection, t + 1);  // Safe against t Byzantine servers.
      break;
    case MajorityFamily::QuThreshold:
      EXPECT_GE(min_intersection, 3 * t + 1);  // Q/U needs 2t+1 honest overlap + t.
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, MajorityIntersectionSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values<std::size_t>(1, 2, 3, 5, 8)));

// ------------------------------------------------------------------- Grid

TEST(Grid, BasicShape) {
  const GridQuorum g{3};
  EXPECT_EQ(g.universe_size(), 9u);
  EXPECT_DOUBLE_EQ(g.quorum_count(), 9.0);
  EXPECT_EQ(g.name(), "Grid(3x3)");
  const auto quorums = g.enumerate_quorums(100);
  EXPECT_EQ(quorums.size(), 9u);
  for (const Quorum& quorum : quorums) EXPECT_EQ(quorum.size(), 5u);  // 2k-1.
}

TEST(Grid, QuorumForRowColumn) {
  const GridQuorum g{3};
  // Row 1 u column 2: elements 3,4,5 (row) + 2,8 (column minus overlap).
  EXPECT_EQ(g.quorum_for(1, 2), (Quorum{2, 3, 4, 5, 8}));
  EXPECT_THROW((void)g.quorum_for(3, 0), std::out_of_range);
}

TEST(Grid, IntersectionProperty) {
  for (std::size_t k : {1u, 2u, 3u, 4u, 5u, 6u}) {
    EXPECT_TRUE(GridQuorum{k}.verify_intersection()) << "k=" << k;
  }
}

TEST(Grid, UniformLoadAndOptimalLoad) {
  const GridQuorum g{4};
  const double expected = 7.0 / 16.0;  // (2k-1)/k^2.
  EXPECT_DOUBLE_EQ(g.optimal_load(), expected);
  for (double load : g.uniform_load()) EXPECT_DOUBLE_EQ(load, expected);
}

TEST(Grid, BestQuorumMatchesBruteForce) {
  common::Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    const GridQuorum g{4};
    std::vector<double> values(16);
    for (double& v : values) v = rng.uniform(0.0, 100.0);
    const Quorum best = g.best_quorum(values);
    double best_max = 0.0;
    for (std::size_t u : best) best_max = std::max(best_max, values[u]);
    for (const Quorum& quorum : g.enumerate_quorums(100)) {
      double quorum_max = 0.0;
      for (std::size_t u : quorum) quorum_max = std::max(quorum_max, values[u]);
      EXPECT_GE(quorum_max + 1e-12, best_max);
    }
  }
}

TEST(Grid, ExpectedMaxMatchesEnumeration) {
  common::Rng rng{101};
  const GridQuorum g{5};
  std::vector<double> values(25);
  for (double& v : values) v = rng.uniform(0.0, 50.0);
  double total = 0.0;
  for (const Quorum& quorum : g.enumerate_quorums(100)) {
    double max_value = 0.0;
    for (std::size_t u : quorum) max_value = std::max(max_value, values[u]);
    total += max_value;
  }
  EXPECT_NEAR(g.expected_max_uniform(values), total / 25.0, 1e-10);
}

TEST(Grid, SampleQuorumsValid) {
  const GridQuorum g{4};
  common::Rng rng{3};
  for (const Quorum& quorum : g.sample_quorums(40, rng)) {
    EXPECT_EQ(quorum.size(), 7u);
    EXPECT_TRUE(std::is_sorted(quorum.begin(), quorum.end()));
  }
}

TEST(Grid, DegenerateOneByOne) {
  const GridQuorum g{1};
  EXPECT_EQ(g.universe_size(), 1u);
  EXPECT_EQ(g.enumerate_quorums(10).size(), 1u);
  EXPECT_DOUBLE_EQ(g.optimal_load(), 1.0);
}

// -------------------------------------------------------------- Singleton

TEST(Singleton, Basics) {
  const SingletonQuorum s;
  EXPECT_EQ(s.universe_size(), 1u);
  EXPECT_DOUBLE_EQ(s.quorum_count(), 1.0);
  EXPECT_TRUE(s.verify_intersection());
  const std::vector<double> values{42.0};
  EXPECT_DOUBLE_EQ(s.expected_max_uniform(values), 42.0);
  EXPECT_EQ(s.best_quorum(values), (Quorum{0}));
  EXPECT_DOUBLE_EQ(s.uniform_load()[0], 1.0);
  common::Rng rng{1};
  EXPECT_EQ(s.sample_quorums(3, rng).size(), 3u);
}

TEST(QuorumSystem, ValuesSizeChecked) {
  const GridQuorum g{2};
  const std::vector<double> wrong{1.0, 2.0};
  EXPECT_THROW((void)g.best_quorum(wrong), std::invalid_argument);
  EXPECT_THROW((void)g.expected_max_uniform(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace qp::quorum
