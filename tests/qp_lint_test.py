#!/usr/bin/env python3
"""CTest coverage for tools/qp_lint.py.

One fixture per rule: a violating snippet must be flagged with exactly its
rule ID, the same snippet carrying a `// qp-lint: allow(<rule>)` annotation
must pass, and a clean synthetic tree exits 0. Also pins the tokenizer
(violations inside comments/strings don't fire), the annotation-above form,
and the QPL000 unknown-rule-name diagnostic.

Usage: qp_lint_test.py <path-to-qp_lint.py>
"""

import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def check(condition, message):
    if not condition:
        FAILURES.append(message)
        print(f"FAIL: {message}", file=sys.stderr)
    else:
        print(f"ok: {message}")


def run_lint(lint_script, root, *args):
    return subprocess.run(
        [sys.executable, str(lint_script), "--root", str(root), *args],
        capture_output=True,
        text=True,
    )


def write_tree(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


# (fixture name, repo-relative path, violating snippet, rule id expected,
#  annotated variant that must pass)
CASES = [
    (
        "unordered-iter",
        "src/core/widget.cpp",
        "QPL001",
        """#include <unordered_map>
std::unordered_map<int, double> cache_;
double total() {
  double sum = 0.0;
  for (const auto& [k, v] : cache_) sum += v;
  return sum;
}
""",
        """#include <unordered_map>
std::unordered_map<int, double> cache_;
double total() {
  double sum = 0.0;
  // qp-lint: allow(unordered-iter) -- sum is order-independent up to fp assoc
  for (const auto& [k, v] : cache_) sum += v;
  return sum;
}
""",
    ),
    (
        "nondeterministic-rng",
        "src/sim/jitter.cpp",
        "QPL002",
        """#include <random>
double jitter() {
  std::mt19937 gen{std::random_device{}()};
  return 0.0;
}
""",
        """#include <random>
double jitter() {
  std::mt19937 gen{std::random_device{}()};  // qp-lint: allow(nondeterministic-rng)
  return 0.0;
}
""",
    ),
    (
        "fp-accumulation",
        "src/core/accumulate.cpp",
        "QPL003",
        """#include <numeric>
#include <vector>
double total(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());
}
""",
        """#include <numeric>
#include <vector>
double total(const std::vector<double>& xs) {
  // qp-lint: allow(fp-accumulation)
  return std::reduce(xs.begin(), xs.end());
}
""",
    ),
    (
        "naked-assert",
        "src/core/guard.cpp",
        "QPL004",
        """#include <cassert>
void guard(int x) { assert(x > 0); }
""",
        """#include <cassert>
void guard(int x) { assert(x > 0); }  // qp-lint: allow(naked-assert)
""",
    ),
    (
        "omp-pragma",
        "src/core/hot_loop.cpp",
        "QPL005",
        """void scale(double* x, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) x[i] *= 2.0;
}
""",
        """void scale(double* x, int n) {
// qp-lint: allow(omp-pragma)
#pragma omp parallel for
  for (int i = 0; i < n; ++i) x[i] *= 2.0;
}
""",
    ),
    (
        "hot-path-sync",
        "src/core/hot_counter.cpp",
        "QPL007",
        """#include <atomic>
std::atomic<unsigned long> candidates_{0};
void tally() { candidates_.fetch_add(1, std::memory_order_relaxed); }
""",
        """#include <atomic>
// qp-lint: allow(hot-path-sync) -- seqlock handoff, not telemetry; audited
std::atomic<unsigned long> candidates_{0};
void tally() {
  // qp-lint: allow(hot-path-sync)
  candidates_.fetch_add(1, std::memory_order_relaxed);
}
""",
    ),
    (
        "parity-reference",
        "src/core/delta_eval_fast.cpp",
        "QPL006",
        """void repair() { /* fast path without any parity audit */ }
""",
        """// qp-lint: allow(parity-reference) -- scaffolding split off the audited file
void repair() { /* fast path without any parity audit */ }
""",
    ),
]

CLEAN_TREE = {
    "src/core/clean.cpp": """#include <map>
#include "common/check.hpp"
// std::rand in a comment must not fire, nor "std::random_device" in a string.
const char* label() { return "std::random_device"; }
std::map<int, double> ordered_;
double total() {
  double sum = 0.0;
  for (const auto& [k, v] : ordered_) sum += v;
  QP_CHECK(sum >= 0.0, "sums of non-negatives");
  return sum;
}
""",
    "src/common/simd_kernels.hpp": """#pragma once
// The one file allowed to carry omp pragmas.
inline double dot(const double* x, const double* w, int n) {
  double sum = 0.0;
#pragma omp simd reduction(+ : sum)
  for (int i = 0; i < n; ++i) sum += x[i] * w[i];
  return sum;
}
""",
    "src/common/rng.cpp": """// The rng module itself may reference std::random_device etc.
#include <random>
unsigned hardware_entropy() { return std::random_device{}(); }
""",
    "tests/lookup_test.cpp": """#include <unordered_set>
// Iterating an unordered container in *tests* is out of scope for QPL001.
std::unordered_set<int> seen;
int count() { int n = 0; for (int x : seen) n += x; return n; }
""",
    "src/core/delta_eval.cpp": """#include "common/check.hpp"
void apply_move() {
  QP_PARITY_ASSERT(1.0, 1.0, 1e-9, "repaired objective vs fresh evaluation");
}
""",
}


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    lint_script = Path(argv[1]).resolve()
    check(lint_script.is_file(), f"lint script exists at {lint_script}")

    # --list-rules names every documented rule.
    listing = subprocess.run(
        [sys.executable, str(lint_script), "--list-rules"], capture_output=True, text=True
    )
    for rule_id in ("QPL001", "QPL002", "QPL003", "QPL004", "QPL005", "QPL006", "QPL007"):
        check(rule_id in listing.stdout, f"--list-rules mentions {rule_id}")

    for name, rel, rule_id, violating, annotated in CASES:
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root, rel, violating)
            result = run_lint(lint_script, root)
            check(result.returncode == 1, f"{name}: violating snippet exits 1")
            check(rule_id in result.stdout, f"{name}: finding carries {rule_id}")
            check(rel in result.stdout.replace(str(root) + "/", ""),
                  f"{name}: finding names {rel}")
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            write_tree(root, rel, annotated)
            result = run_lint(lint_script, root)
            check(
                result.returncode == 0,
                f"{name}: annotated snippet passes (got {result.returncode}: "
                f"{result.stdout.strip()})",
            )

    # A clean synthetic tree (with the real exemptions exercised) exits 0.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel, text in CLEAN_TREE.items():
            write_tree(root, rel, text)
        result = run_lint(lint_script, root)
        check(
            result.returncode == 0,
            f"clean tree exits 0 (got {result.returncode}: {result.stdout.strip()})",
        )

    # Unknown rule names in annotations are QPL000 and cannot be suppressed.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write_tree(
            root,
            "src/core/bad.cpp",
            "// qp-lint: allow(definitely-not-a-rule)\nint x = 0;\n",
        )
        result = run_lint(lint_script, root)
        check(result.returncode == 1, "unknown allow-name exits 1")
        check("QPL000" in result.stdout, "unknown allow-name reports QPL000")

    # Explicit file arguments lint just those files.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        bad = write_tree(root, "src/core/guard.cpp", "void g(int x) { assert(x); }\n")
        write_tree(root, "src/core/other.cpp", "void h(int x) { assert(x); }\n")
        result = run_lint(lint_script, root, str(bad))
        check(result.returncode == 1, "explicit file list: finding detected")
        check("other.cpp" not in result.stdout, "explicit file list: others untouched")

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed", file=sys.stderr)
        return 1
    print("all qp-lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
