#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/capacity.hpp"
#include "core/iterative.hpp"
#include "core/response.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

IterativeOptions fast_options(const LatencyMatrix& m, std::size_t anchors = 4) {
  IterativeOptions options;
  options.anchor_candidates.clear();
  for (std::size_t v = 0; v < std::min(anchors, m.size()); ++v) {
    options.anchor_candidates.push_back(v);
  }
  return options;
}

TEST(Iterative, ProducesConsistentResult) {
  const LatencyMatrix m = net::small_synth(10, 3);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 0.9);
  const IterativeResult result =
      iterative_placement(m, grid, caps, /*alpha=*/0.0, fast_options(m));
  result.placement.validate(m.size());
  result.strategy.validate(m.size(), grid.universe_size());
  ASSERT_FALSE(result.history.empty());
  // Reported response must match re-evaluating the returned artifacts.
  const Evaluation check = evaluate_explicit(m, grid, result.placement, 0.0, result.strategy);
  EXPECT_NEAR(check.avg_response_ms, result.avg_response, 1e-9);
}

TEST(Iterative, Phase2NeverWorseThanPhase1) {
  // The strategy LP can only decrease delay at fixed loads (§4.2).
  const LatencyMatrix m = net::small_synth(12, 7);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 0.8);
  const IterativeResult result =
      iterative_placement(m, grid, caps, /*alpha=*/10.0, fast_options(m));
  for (const IterationRecord& record : result.history) {
    if (record.response_after_strategy == 0.0) continue;  // LP failure path.
    EXPECT_LE(record.response_after_strategy, record.response_after_placement + 1e-6);
  }
}

TEST(Iterative, AcceptedIterationsImproveMonotonically) {
  const LatencyMatrix m = net::small_synth(12, 11);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 0.9);
  const IterativeResult result =
      iterative_placement(m, grid, caps, /*alpha=*/5.0, fast_options(m, 6));
  double previous = 1e300;
  for (const IterationRecord& record : result.history) {
    if (!record.accepted) continue;
    EXPECT_LT(record.response_after_strategy, previous + 1e-9);
    previous = record.response_after_strategy;
  }
  // The returned response equals the last accepted iteration's.
  EXPECT_NEAR(result.avg_response, previous, 1e-9);
}

TEST(Iterative, HaltsWithinMaxIterations) {
  const LatencyMatrix m = net::small_synth(9, 13);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 1.0);
  IterativeOptions options = fast_options(m);
  options.max_iterations = 3;
  const IterativeResult result = iterative_placement(m, grid, caps, 0.0, options);
  EXPECT_LE(result.history.size(), 3u);
}

TEST(Iterative, ThrowsWhenFirstIterationInfeasible) {
  const LatencyMatrix m = net::small_synth(6, 17);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 0.01);  // Cannot fit load 3.
  EXPECT_THROW((void)iterative_placement(m, grid, caps, 0.0, fast_options(m)),
               std::runtime_error);
}

TEST(Iterative, ManyToOneImprovesNetworkDelayOverOneToOne) {
  // Figure 8.9's headline: the iterative (many-to-one) network delay beats
  // the one-to-one placement's balanced-strategy delay.
  const LatencyMatrix m = net::small_synth(14, 19);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 1.0);
  const IterativeResult iterative =
      iterative_placement(m, grid, caps, 0.0, fast_options(m, 14));

  const PlacementSearchResult one_to_one = best_grid_placement(m, 2);
  const Evaluation baseline = evaluate_balanced(m, grid, one_to_one.placement, 0.0);
  EXPECT_LE(iterative.avg_network_delay, baseline.avg_network_delay_ms + 1e-9);
}

TEST(Iterative, HistoryRecordsPhases) {
  const LatencyMatrix m = net::small_synth(10, 23);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 0.9);
  const IterativeResult result = iterative_placement(m, grid, caps, 0.0, fast_options(m));
  for (std::size_t j = 0; j < result.history.size(); ++j) {
    EXPECT_EQ(result.history[j].iteration, j + 1);
    EXPECT_GT(result.history[j].response_after_placement, 0.0);
  }
  EXPECT_TRUE(result.history.front().accepted);
}

TEST(Iterative, DemandWeightedPhaseLpsStayConsistent) {
  // Skewed demand flows through both phases: the reported response must
  // match re-evaluating the returned artifacts under the same demand, and
  // the phase-2 LP strategies must respect the demand-weighted load caps
  // pinned to the phase-1 loads (phase 2 can only re-route delay).
  const LatencyMatrix m = net::small_synth(10, 29);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 0.9);
  std::vector<double> demand(m.size(), 1.0);
  demand[0] = 6.0;
  demand[3] = 3.0;
  const LoadAwareObjective objective =
      LoadAwareObjective::for_demand(std::span<const double>{demand});
  const IterativeResult result =
      iterative_placement(m, grid, caps, objective, fast_options(m));
  result.placement.validate(m.size());
  result.strategy.validate(m.size(), grid.universe_size());
  ASSERT_FALSE(result.history.empty());
  const Evaluation check = evaluate_explicit(m, grid, result.placement, objective.alpha(),
                                             result.strategy, demand);
  EXPECT_NEAR(check.avg_response_ms, result.avg_response, 1e-9);
  for (const IterationRecord& record : result.history) {
    if (record.accepted) {
      EXPECT_LE(record.response_after_strategy,
                record.response_after_placement + 1e-9);
    }
  }
}

}  // namespace
}  // namespace qp::core
