// Concurrency stress suites for common/thread_pool and the sim/engine
// replication fan-out — written to give ThreadSanitizer real interleavings
// to inspect (the `tsan` preset runs these; see tests/README.md "Static
// analysis & sanitizers"). Each test is also a plain correctness test, so
// the suite runs in every preset.
//
// Shapes covered, matching the pool's documented contract:
//   * nested parallel_for from inside a worker body (must run inline);
//   * concurrent parallel_for from several external threads (submit_mutex
//     serialization, caller participation);
//   * pool construction/teardown churn, including teardown racing a
//     submitter on another thread (the destructor drains in-flight jobs);
//   * exception propagation while other bodies still run;
//   * sim/engine replication fan-out: bit-identical results for any
//     thread count, including when the engine itself runs nested inside a
//     worker of the same pool.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace {

using qp::common::ThreadPool;

TEST(RaceStress, ConcurrentParallelForFromManyThreads) {
  // Several external threads hammer one pool at once; the pool runs one job
  // at a time (submit_mutex), each job's indices land exactly once in
  // caller-owned slots.
  ThreadPool pool{4};
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kIndices = 512;
  constexpr int kRounds = 25;
  std::vector<std::vector<std::uint32_t>> counts(
      kCallers, std::vector<std::uint32_t>(kIndices, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &counts, c] {
      for (int round = 0; round < kRounds; ++round) {
        pool.parallel_for(0, kIndices, [&counts, c](std::size_t i) { ++counts[c][i]; });
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kIndices; ++i) {
      ASSERT_EQ(counts[c][i], static_cast<std::uint32_t>(kRounds))
          << "caller " << c << " index " << i;
    }
  }
}

constexpr std::size_t kOuter = 64;
constexpr std::size_t kInner = 32;

TEST(RaceStress, NestedParallelForRunsInlineAndCompletely) {
  for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    ThreadPool pool{threads};
    std::vector<std::uint32_t> cells(kOuter * kInner, 0);
    pool.parallel_for(0, kOuter, [&](std::size_t outer) {
      // Inner call re-enters the same pool from a worker (or the caller):
      // the contract says it degrades to inline serial execution.
      pool.parallel_for(0, kInner, [&cells, outer](std::size_t inner) {
        ++cells[outer * kInner + inner];
      });
    });
    ASSERT_EQ(std::accumulate(cells.begin(), cells.end(), 0u), kOuter * kInner);
    ASSERT_TRUE(std::all_of(cells.begin(), cells.end(),
                            [](std::uint32_t c) { return c == 1; }));
  }
}

TEST(RaceStress, TripleNestingStaysInline) {
  ThreadPool pool{4};
  std::atomic<std::uint32_t> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) {
      pool.parallel_for(0, 2, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(total.load(), 8u * 4u * 2u);
}

TEST(RaceStress, CallerParticipatesInTheWork) {
  // The calling thread is one of the workers: with long-enough bodies the
  // set of executing threads must never exceed thread_count(), and every
  // index runs exactly once.
  ThreadPool pool{4};
  std::mutex ids_mutex;
  std::set<std::thread::id> ids;
  std::vector<std::uint32_t> ran(256, 0);
  pool.parallel_for(0, ran.size(), [&](std::size_t i) {
    ++ran[i];
    const std::lock_guard<std::mutex> lock{ids_mutex};
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(ids.size(), pool.thread_count());
  EXPECT_TRUE(std::all_of(ran.begin(), ran.end(), [](std::uint32_t c) { return c == 1; }));
}

TEST(RaceStress, TeardownRightAfterWork) {
  // Construct, run one fan-out, destruct immediately — repeatedly and for
  // several sizes. TSan watches the worker join against the last bodies.
  for (int round = 0; round < 40; ++round) {
    const std::size_t threads = 1 + static_cast<std::size_t>(round % 8);
    ThreadPool pool{threads};
    std::vector<std::uint32_t> ran(128, 0);
    pool.parallel_for(0, ran.size(), [&ran](std::size_t i) { ++ran[i]; });
    ASSERT_TRUE(
        std::all_of(ran.begin(), ran.end(), [](std::uint32_t c) { return c == 1; }));
    // Pool destroyed here, right after the job drained.
  }
}

TEST(RaceStress, TeardownWithoutAnyWork) {
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool{1 + static_cast<std::size_t>(round % 8)};
    // Workers are parked at work_cv; the destructor must wake and join them.
  }
}

TEST(RaceStress, TeardownWhileAnotherThreadSubmits) {
  // The destructor serializes behind in-flight parallel_for calls: a job
  // submitted from another thread either completes fully before shutdown or
  // (if it arrives after destruction began) never started — we only submit
  // before destruction here, so it must complete fully.
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint32_t> ran(512, 0);
    std::atomic<bool> submitted{false};
    auto pool = std::make_unique<ThreadPool>(4);
    std::thread submitter{[&] {
      pool->parallel_for(0, ran.size(), [&](std::size_t i) {
        submitted.store(true, std::memory_order_release);
        ++ran[i];
      });
    }};
    // Spin until the job is demonstrably in flight, then destroy the pool
    // concurrently with it.
    while (!submitted.load(std::memory_order_acquire)) std::this_thread::yield();
    pool.reset();
    submitter.join();
    ASSERT_TRUE(
        std::all_of(ran.begin(), ran.end(), [](std::uint32_t c) { return c == 1; }));
  }
}

TEST(RaceStress, ExceptionFromOneBodyStillRunsTheRest) {
  ThreadPool pool{4};
  std::vector<std::uint32_t> ran(256, 0);
  EXPECT_THROW(
      pool.parallel_for(0, ran.size(),
                        [&ran](std::size_t i) {
                          ++ran[i];
                          if (i == 17) throw std::runtime_error{"body 17"};
                        }),
      std::runtime_error);
  // Contract: remaining indices still run, the first error is rethrown.
  EXPECT_TRUE(std::all_of(ran.begin(), ran.end(), [](std::uint32_t c) { return c == 1; }));
  // And the pool stays usable afterwards.
  std::atomic<std::uint32_t> after{0};
  pool.parallel_for(0, 64, [&](std::size_t) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 64u);
}

// --- sim/engine replication fan-out ---------------------------------------

qp::sim::EngineConfig stress_engine_config() {
  qp::sim::EngineConfig config;
  config.service_time_ms = 0.5;
  config.service_model = qp::sim::ServiceModel::Exponential;
  config.strategy = qp::sim::EngineStrategy::Closest;
  config.warmup_ms = 20.0;
  config.duration_ms = 150.0;
  config.replications = 12;  // More replications than threads: real fan-out.
  config.master_seed = 0xace5'5eedULL;
  return config;
}

/// Identity one-to-one placement of a |U| = n universe onto the first n sites.
qp::core::Placement identity_placement(std::size_t n) {
  qp::core::Placement placement;
  placement.site_of.resize(n);
  std::iota(placement.site_of.begin(), placement.site_of.end(), std::size_t{0});
  return placement;
}

TEST(RaceStress, EngineFanOutBitIdenticalAcrossThreadCounts) {
  const qp::net::LatencyMatrix matrix = qp::net::small_synth(9, /*seed=*/21);
  const qp::quorum::MajorityQuorum system{9, 5};
  const qp::core::Placement placement = identity_placement(9);
  const std::vector<double> rates(9, 0.08);
  const qp::sim::EngineConfig base = stress_engine_config();

  qp::sim::EngineConfig serial = base;
  qp::common::ThreadPool reference_pool{1};
  serial.pool = &reference_pool;
  const qp::sim::EngineResult expected =
      qp::sim::run_engine(matrix, system, placement, rates, serial);

  for (std::size_t threads : {2u, 4u, 8u, 16u}) {
    qp::common::ThreadPool pool{threads};
    qp::sim::EngineConfig config = base;
    config.pool = &pool;
    const qp::sim::EngineResult result =
        qp::sim::run_engine(matrix, system, placement, rates, config);
    // Bit-identical, not approximately equal: replication r derives its rng
    // stream from the master seed alone and results reduce in serial order.
    EXPECT_EQ(result.mean_response_ms, expected.mean_response_ms) << threads;
    EXPECT_EQ(result.mean_network_delay_ms, expected.mean_network_delay_ms) << threads;
    EXPECT_EQ(result.p99_ms, expected.p99_ms) << threads;
    EXPECT_EQ(result.completed, expected.completed) << threads;
    EXPECT_EQ(result.failed, expected.failed) << threads;
    ASSERT_EQ(result.site_utilization.size(), expected.site_utilization.size());
    for (std::size_t w = 0; w < result.site_utilization.size(); ++w) {
      EXPECT_EQ(result.site_utilization[w], expected.site_utilization[w])
          << threads << " site " << w;
    }
  }
}

TEST(RaceStress, EngineFaultRetryFailoverBitIdenticalAcrossThreadCounts) {
  // The retry/failover layer adds rng draws (backoff jitter) and per-attempt
  // state on top of the fan-out; with a dense injected fault schedule the
  // whole recovery pipeline — timeouts, suspicion, re-choice, abandonment —
  // must still reduce bit-identically for any thread count.
  const qp::net::LatencyMatrix matrix = qp::net::small_synth(9, /*seed=*/21);
  const qp::quorum::MajorityQuorum system{9, 5};
  const qp::core::Placement placement = identity_placement(9);
  const std::vector<double> rates(9, 0.08);
  qp::sim::EngineConfig base = stress_engine_config();
  qp::sim::FaultInjectorConfig fault;
  fault.seed = 0xfa17'5eedULL;
  fault.horizon_ms = base.warmup_ms + base.duration_ms;
  fault.site = qp::sim::FaultProcess::for_down_probability(0.25, 30.0);
  base.outages = qp::sim::FaultInjector{fault}.schedule(9);
  base.retry.timeout_ms = 60.0;
  base.retry.max_attempts = 3;
  base.retry.backoff_base_ms = 5.0;
  base.retry.jitter_frac = 0.5;

  for (qp::sim::FailoverMode mode :
       {qp::sim::FailoverMode::Suspicion, qp::sim::FailoverMode::Oracle}) {
    base.failover = mode;
    qp::sim::EngineConfig serial = base;
    qp::common::ThreadPool reference_pool{1};
    serial.pool = &reference_pool;
    const qp::sim::EngineResult expected =
        qp::sim::run_engine(matrix, system, placement, rates, serial);
    EXPECT_GT(expected.retries, 0u);

    for (std::size_t threads : {2u, 4u, 8u, 16u}) {
      qp::common::ThreadPool pool{threads};
      qp::sim::EngineConfig config = base;
      config.pool = &pool;
      const qp::sim::EngineResult result =
          qp::sim::run_engine(matrix, system, placement, rates, config);
      EXPECT_EQ(result.mean_response_ms, expected.mean_response_ms) << threads;
      EXPECT_EQ(result.p99_ms, expected.p99_ms) << threads;
      EXPECT_EQ(result.degraded_p99_ms, expected.degraded_p99_ms) << threads;
      EXPECT_EQ(result.completed, expected.completed) << threads;
      EXPECT_EQ(result.failed, expected.failed) << threads;
      EXPECT_EQ(result.abandoned, expected.abandoned) << threads;
      EXPECT_EQ(result.retries, expected.retries) << threads;
      EXPECT_EQ(result.stale_replies, expected.stale_replies) << threads;
      EXPECT_EQ(result.unavailability, expected.unavailability) << threads;
      EXPECT_EQ(result.retried_response.mean(), expected.retried_response.mean())
          << threads;
    }
  }
}

TEST(RaceStress, EngineRunsNestedInsideParallelFor) {
  // A figure sweep parallelizes over points and each point runs the engine:
  // the nested fan-out must degrade to inline execution, still producing
  // the exact same result as a top-level run.
  const qp::net::LatencyMatrix matrix = qp::net::small_synth(7, /*seed=*/22);
  const qp::quorum::MajorityQuorum system{7, 4};
  const qp::core::Placement placement = identity_placement(7);
  const std::vector<double> rates(7, 0.05);
  qp::sim::EngineConfig config = stress_engine_config();
  config.replications = 4;

  qp::common::ThreadPool pool{4};
  config.pool = &pool;
  const qp::sim::EngineResult expected =
      qp::sim::run_engine(matrix, system, placement, rates, config);

  std::vector<double> means(8, 0.0);
  pool.parallel_for(0, means.size(), [&](std::size_t point) {
    means[point] =
        qp::sim::run_engine(matrix, system, placement, rates, config).mean_response_ms;
  });
  for (double mean : means) EXPECT_EQ(mean, expected.mean_response_ms);
}

}  // namespace
