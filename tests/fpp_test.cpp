#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "quorum/fpp.hpp"

namespace qp::quorum {
namespace {

TEST(Fpp, SizesForSmallPrimes) {
  for (std::size_t q : {2u, 3u, 5u, 7u}) {
    const FppQuorum plane{q};
    EXPECT_EQ(plane.universe_size(), q * q + q + 1) << q;
    EXPECT_DOUBLE_EQ(plane.quorum_count(), static_cast<double>(q * q + q + 1)) << q;
    for (const Quorum& line : plane.enumerate_quorums(10'000)) {
      EXPECT_EQ(line.size(), q + 1) << q;
      EXPECT_TRUE(std::is_sorted(line.begin(), line.end()));
    }
  }
}

TEST(Fpp, RejectsNonPrimesAndHugeOrders) {
  EXPECT_THROW(FppQuorum{0}, std::invalid_argument);
  EXPECT_THROW(FppQuorum{1}, std::invalid_argument);
  EXPECT_THROW(FppQuorum{4}, std::invalid_argument);   // Prime power, unsupported.
  EXPECT_THROW(FppQuorum{6}, std::invalid_argument);
  EXPECT_THROW(FppQuorum{37}, std::invalid_argument);  // Above the size cap.
}

TEST(Fpp, FanoPlaneIsTheClassicSevenPointPlane) {
  const FppQuorum fano{2};
  EXPECT_EQ(fano.universe_size(), 7u);
  const auto lines = fano.enumerate_quorums(100);
  EXPECT_EQ(lines.size(), 7u);
  // Every point lies on exactly 3 lines.
  std::vector<int> incidence(7, 0);
  for (const Quorum& line : lines) {
    for (std::size_t p : line) incidence[p] += 1;
  }
  for (int count : incidence) EXPECT_EQ(count, 3);
}

TEST(Fpp, AnyTwoLinesMeetInExactlyOnePoint) {
  for (std::size_t q : {2u, 3u, 5u}) {
    const FppQuorum plane{q};
    const auto lines = plane.enumerate_quorums(10'000);
    for (std::size_t a = 0; a < lines.size(); ++a) {
      for (std::size_t b = a + 1; b < lines.size(); ++b) {
        std::vector<std::size_t> common;
        std::set_intersection(lines[a].begin(), lines[a].end(), lines[b].begin(),
                              lines[b].end(), std::back_inserter(common));
        EXPECT_EQ(common.size(), 1u) << "q=" << q << " lines " << a << "," << b;
      }
    }
  }
}

TEST(Fpp, IntersectionPropertyViaBaseClass) {
  EXPECT_TRUE(FppQuorum{3}.verify_intersection(10'000));
}

TEST(Fpp, LoadIsOptimalOrderSqrtN) {
  const FppQuorum plane{5};  // n = 31, |Q| = 6.
  const double expected = 6.0 / 31.0;
  EXPECT_DOUBLE_EQ(plane.optimal_load(), expected);
  for (double load : plane.uniform_load()) EXPECT_DOUBLE_EQ(load, expected);
  // FPP's load beats Majority's (which is > 1/2) by design.
  EXPECT_LT(plane.optimal_load(), 0.5);
}

TEST(Fpp, BestQuorumMatchesBruteForce) {
  common::Rng rng{71};
  const FppQuorum plane{3};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values(plane.universe_size());
    for (double& v : values) v = rng.uniform(0.0, 100.0);
    const Quorum best = plane.best_quorum(values);
    double best_max = 0.0;
    for (std::size_t u : best) best_max = std::max(best_max, values[u]);
    for (const Quorum& line : plane.enumerate_quorums(1000)) {
      double worst = 0.0;
      for (std::size_t u : line) worst = std::max(worst, values[u]);
      EXPECT_GE(worst + 1e-12, best_max);
    }
  }
}

TEST(Fpp, ExpectedMaxMatchesEnumeration) {
  common::Rng rng{73};
  const FppQuorum plane{2};
  std::vector<double> values(7);
  for (double& v : values) v = rng.uniform(0.0, 10.0);
  const auto lines = plane.enumerate_quorums(100);
  double total = 0.0;
  for (const Quorum& line : lines) {
    double worst = 0.0;
    for (std::size_t u : line) worst = std::max(worst, values[u]);
    total += worst;
  }
  EXPECT_NEAR(plane.expected_max_uniform(values), total / 7.0, 1e-12);
}

TEST(Fpp, SamplesAreValidLines) {
  const FppQuorum plane{3};
  common::Rng rng{79};
  const auto all = plane.enumerate_quorums(1000);
  const std::set<Quorum> valid(all.begin(), all.end());
  for (const Quorum& line : plane.sample_quorums(100, rng)) {
    EXPECT_TRUE(valid.count(line));
  }
}

}  // namespace
}  // namespace qp::quorum
