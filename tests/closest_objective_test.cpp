// Parity suite for the §6 closest-strategy Objective and its incremental
// DeltaEvaluator engine: ClosestStrategyObjective must match evaluate_closest
// exactly, the quorum-choice tables (per-client best quorum + best/second
// values with lazy repair) must match the naive closest evaluation to 1e-9
// across all four quorum-system families, every (element, site) candidate,
// colocated placements (where distance ties make the choice recompute paths
// exercise best_quorum's exact tie-breaking), demand-weighted scenarios, and
// randomized move sequences — and the search layers (local search engines,
// parallel scan, best_placement) must stay deterministic on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/delta_eval.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "net/synthetic.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/singleton.hpp"
#include "quorum/tree.hpp"
#include "sim/scenario.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

struct SystemCase {
  std::string label;
  std::unique_ptr<quorum::QuorumSystem> system;
};

/// The four quorum-system families: Majority (order-selection choice path),
/// Grid (row/column argmin path), FPP and Tree (enumerated path; Tree's
/// best_quorum tie-breaking is a DP, not a scan, so the engine must defer to
/// it exactly).
std::vector<SystemCase> all_systems() {
  std::vector<SystemCase> cases;
  cases.push_back({"majority", std::make_unique<quorum::MajorityQuorum>(9, 5)});
  cases.push_back({"grid", std::make_unique<quorum::GridQuorum>(3)});
  cases.push_back({"fpp", std::make_unique<quorum::FppQuorum>(2)});
  cases.push_back({"tree", std::make_unique<quorum::TreeQuorum>(2)});
  return cases;
}

Placement random_one_to_one(const LatencyMatrix& m, std::size_t universe,
                            common::Rng& rng) {
  return Placement{rng.sample_without_replacement(m.size(), universe)};
}

/// Random placement with deliberate colocation: roughly half the elements
/// share sites, so per-client distances tie constantly and every choice
/// recompute exercises the exact tie-breaking replication.
Placement random_many_to_one(const LatencyMatrix& m, std::size_t universe,
                             common::Rng& rng) {
  Placement placement;
  placement.site_of.resize(universe);
  const std::size_t distinct = std::max<std::size_t>(1, universe / 2);
  const std::vector<std::size_t> sites = rng.sample_without_replacement(m.size(), distinct);
  for (std::size_t u = 0; u < universe; ++u) {
    placement.site_of[u] = sites[rng.below(distinct)];
  }
  return placement;
}

std::vector<double> random_demand(std::size_t clients, common::Rng& rng) {
  std::vector<double> demand(clients);
  for (double& d : demand) d = rng.uniform(0.5, 20.0);
  return demand;
}

double naive_if_moved(const LatencyMatrix& m, const quorum::QuorumSystem& system,
                      const Objective& objective, Placement placement, std::size_t element,
                      std::size_t site) {
  placement.site_of[element] = site;
  return objective.evaluate(m, system, placement);
}

TEST(ClosestObjective, MatchesEvaluateClosest) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 71);
    common::Rng rng{3};
    for (const double alpha : {0.0, 0.007, 7.0, 56.0}) {
      const ClosestStrategyObjective objective{alpha};
      for (int trial = 0; trial < 3; ++trial) {
        const Placement placement = trial == 2 ? random_many_to_one(m, n, rng)
                                               : random_one_to_one(m, n, rng);
        const double value = objective.evaluate(m, *test_case.system, placement);
        const Evaluation closest = evaluate_closest(m, *test_case.system, placement, alpha);
        EXPECT_NEAR(value, closest.avg_response_ms,
                    1e-12 * std::max(1.0, closest.avg_response_ms))
            << test_case.label << " alpha " << alpha << " trial " << trial;
      }
    }
  }
}

TEST(ClosestObjective, DemandWeightedMatchesEvaluateClosest) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 8, 73);
    common::Rng rng{5};
    const std::vector<double> demand = random_demand(m.size(), rng);
    const ClosestStrategyObjective objective =
        ClosestStrategyObjective::for_demand(std::span<const double>{demand});
    EXPECT_FALSE(objective.client_weights().empty());
    for (int trial = 0; trial < 3; ++trial) {
      const Placement placement = trial == 2 ? random_many_to_one(m, n, rng)
                                             : random_one_to_one(m, n, rng);
      const double value = objective.evaluate(m, *test_case.system, placement);
      const Evaluation closest =
          evaluate_closest(m, *test_case.system, placement, objective.alpha(), demand);
      EXPECT_NEAR(value, closest.avg_response_ms,
                  1e-9 * std::max(1.0, closest.avg_response_ms))
          << test_case.label << " trial " << trial;
    }
  }
}

TEST(ClosestObjective, ConstantDemandCollapsesToUniformExactly) {
  const LatencyMatrix m = net::small_synth(16, 79);
  const quorum::GridQuorum grid{3};
  common::Rng rng{7};
  const Placement placement = random_one_to_one(m, grid.universe_size(), rng);
  const std::vector<double> constant(m.size(), 123.0);
  const ClosestStrategyObjective weighted =
      ClosestStrategyObjective::for_demand(std::span<const double>{constant});
  EXPECT_TRUE(weighted.client_weights().empty());
  const ClosestStrategyObjective uniform{weighted.alpha()};
  // Bitwise equality: constant demand runs the identical uniform arithmetic.
  EXPECT_EQ(weighted.evaluate(m, grid, placement), uniform.evaluate(m, grid, placement));
  const Evaluation via_demand =
      evaluate_closest(m, grid, placement, weighted.alpha(), constant);
  const Evaluation via_uniform = evaluate_closest(m, grid, placement, weighted.alpha());
  EXPECT_EQ(via_demand.avg_response_ms, via_uniform.avg_response_ms);
  EXPECT_EQ(via_demand.site_load, via_uniform.site_load);
}

TEST(ClosestDeltaEval, MatchesNaiveAtConstruction) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 8, 83);
    common::Rng rng{11};
    const ClosestStrategyObjective objective{13.0};
    for (int trial = 0; trial < 5; ++trial) {
      const Placement placement = trial >= 3 ? random_many_to_one(m, n, rng)
                                             : random_one_to_one(m, n, rng);
      const DeltaEvaluator eval{m, *test_case.system, placement, objective};
      const double naive = objective.evaluate(m, *test_case.system, placement);
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " trial " << trial;
    }
  }
}

TEST(ClosestDeltaEval, CandidateMovesMatchNaiveAcrossAllSystems) {
  // Every (element, site) candidate from a one-to-one placement, at several
  // alpha levels including 0: the provably-unchanged fast path, the
  // Majority keep-slot path, and the exact choice recompute all must match
  // the naive closest evaluation.
  common::Rng alpha_rng{1013};
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 10, 89);
    common::Rng rng{13};
    for (int trial = 0; trial < 2; ++trial) {
      const ClosestStrategyObjective objective{trial == 0 ? 0.0
                                                          : alpha_rng.uniform(0.01, 90.0)};
      const Placement placement = random_one_to_one(m, n, rng);
      const DeltaEvaluator eval{m, *test_case.system, placement, objective};
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t w = 0; w < m.size(); ++w) {
          const double delta = eval.objective_if_moved(u, w);
          const double naive =
              naive_if_moved(m, *test_case.system, objective, placement, u, w);
          EXPECT_NEAR(delta, naive, 1e-9 * std::max(1.0, naive))
              << test_case.label << " move " << u << "->" << w;
        }
      }
    }
  }
}

TEST(ClosestDeltaEval, ColocatedPlacementsMatchNaive) {
  // Colocated elements have identical distances for every client, so quorum
  // choices tie constantly: every candidate exercises the exact tie-breaking
  // replication against best_quorum.
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 6, 97);
    common::Rng rng{17};
    const ClosestStrategyObjective objective{23.0};
    const Placement placement = random_many_to_one(m, n, rng);
    const DeltaEvaluator eval{m, *test_case.system, placement, objective};
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t w = 0; w < m.size(); ++w) {
        const double delta = eval.objective_if_moved(u, w);
        const double naive =
            naive_if_moved(m, *test_case.system, objective, placement, u, w);
        EXPECT_NEAR(delta, naive, 1e-9 * std::max(1.0, naive))
            << test_case.label << " move " << u << "->" << w;
      }
    }
  }
}

TEST(ClosestDeltaEval, DemandWeightedCandidatesMatchNaive) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 7, 101);
    common::Rng rng{19};
    const std::vector<double> demand = random_demand(m.size(), rng);
    const ClosestStrategyObjective objective =
        ClosestStrategyObjective::for_demand(std::span<const double>{demand});
    const Placement placement = random_one_to_one(m, n, rng);
    const DeltaEvaluator eval{m, *test_case.system, placement, objective};
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t w = 0; w < m.size(); ++w) {
        const double delta = eval.objective_if_moved(u, w);
        const double naive =
            naive_if_moved(m, *test_case.system, objective, placement, u, w);
        EXPECT_NEAR(delta, naive, 1e-9 * std::max(1.0, naive))
            << test_case.label << " move " << u << "->" << w;
      }
    }
  }
}

TEST(ClosestDeltaEval, RandomizedMoveSequencesStayInParity) {
  // apply_move repairs the distance rows and quorum-choice tables in place;
  // a random walk (including colocating moves) must stay in parity with the
  // naive evaluation at every step.
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 12, 103);
    common::Rng rng{23};
    const ClosestStrategyObjective objective{47.0};
    Placement placement = random_one_to_one(m, n, rng);
    DeltaEvaluator eval{m, *test_case.system, placement, objective};
    for (int step = 0; step < 25; ++step) {
      const std::size_t u = static_cast<std::size_t>(rng.below(n));
      const std::size_t w = static_cast<std::size_t>(rng.below(m.size()));
      const double predicted = eval.objective_if_moved(u, w);
      eval.apply_move(u, w);
      placement.site_of[u] = w;
      const double naive = objective.evaluate(m, *test_case.system, placement);
      EXPECT_NEAR(predicted, naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
    }
  }
}

TEST(ClosestDeltaEval, DemandWeightedMoveSequencesStayInParity) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 107);
    common::Rng rng{29};
    const std::vector<double> demand = random_demand(m.size(), rng);
    const ClosestStrategyObjective objective =
        ClosestStrategyObjective::for_demand(std::span<const double>{demand});
    Placement placement = random_one_to_one(m, n, rng);
    DeltaEvaluator eval{m, *test_case.system, placement, objective};
    for (int step = 0; step < 15; ++step) {
      const std::size_t u = static_cast<std::size_t>(rng.below(n));
      const std::size_t w = static_cast<std::size_t>(rng.below(m.size()));
      const double predicted = eval.objective_if_moved(u, w);
      eval.apply_move(u, w);
      placement.site_of[u] = w;
      const double naive = objective.evaluate(m, *test_case.system, placement);
      EXPECT_NEAR(predicted, naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
    }
  }
}

TEST(ClosestDeltaEval, SingletonGoesThroughTheEnumeratedPath) {
  const LatencyMatrix m = net::small_synth(10, 109);
  const quorum::SingletonQuorum singleton;
  const ClosestStrategyObjective objective{5.0};
  const Placement placement{std::vector<std::size_t>{3}};
  const DeltaEvaluator eval{m, singleton, placement, objective};
  for (std::size_t w = 0; w < m.size(); ++w) {
    const double naive = naive_if_moved(m, singleton, objective, placement, 0, w);
    EXPECT_NEAR(eval.objective_if_moved(0, w), naive, 1e-12 * std::max(1.0, naive));
  }
}

/// Minimal non-enumerable, non-Grid/Majority system: the closest engine has
/// no exact choice structure for it and must refuse.
class HugeOpaqueSystem final : public quorum::QuorumSystem {
 public:
  [[nodiscard]] std::size_t universe_size() const noexcept override { return 4; }
  [[nodiscard]] std::string name() const override { return "huge-opaque"; }
  [[nodiscard]] double quorum_count() const noexcept override { return 1e18; }
  [[nodiscard]] std::vector<quorum::Quorum> enumerate_quorums(std::size_t) const override {
    throw std::domain_error{"not enumerable"};
  }
  [[nodiscard]] quorum::Quorum best_quorum(std::span<const double>) const override {
    return {0, 1, 2};
  }
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override {
    return values[0];
  }
  [[nodiscard]] std::vector<double> uniform_load() const override {
    return std::vector<double>(4, 0.5);
  }
  [[nodiscard]] double optimal_load() const override { return 0.5; }
  [[nodiscard]] std::vector<quorum::Quorum> sample_quorums(std::size_t,
                                                           common::Rng&) const override {
    return {};
  }
};

TEST(ClosestDeltaEval, RejectsSystemsWithoutAChoiceStructure) {
  const LatencyMatrix m = net::small_synth(8, 113);
  const HugeOpaqueSystem system;
  const ClosestStrategyObjective objective{1.0};
  const Placement placement{std::vector<std::size_t>{0, 1, 2, 3}};
  EXPECT_THROW((DeltaEvaluator{m, system, placement, objective}), std::invalid_argument);
}

TEST(ClosestLocalSearch, DeltaEngineMatchesNaiveEngine) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 127);
    common::Rng rng{31};
    const ClosestStrategyObjective objective{33.0};
    const Placement initial = random_one_to_one(m, n, rng);

    LocalSearchOptions naive_options;
    naive_options.engine = LocalSearchEngine::Naive;
    naive_options.objective = &objective;
    const LocalSearchResult naive =
        local_search_placement(m, *test_case.system, initial, naive_options);

    LocalSearchOptions delta_options;
    delta_options.engine = LocalSearchEngine::Delta;
    delta_options.threads = 1;
    delta_options.objective = &objective;
    const LocalSearchResult delta =
        local_search_placement(m, *test_case.system, initial, delta_options);

    EXPECT_EQ(delta.placement.site_of, naive.placement.site_of) << test_case.label;
    EXPECT_EQ(delta.moves, naive.moves) << test_case.label;
    EXPECT_NEAR(delta.objective, naive.objective, 1e-9 * std::max(1.0, naive.objective))
        << test_case.label;
  }
}

TEST(ClosestLocalSearch, ParallelScanIsDeterministic) {
  const LatencyMatrix m = net::small_synth(30, 131);
  const quorum::GridQuorum grid{3};
  common::Rng rng{37};
  const std::vector<double> demand = random_demand(m.size(), rng);
  const ClosestStrategyObjective objective =
      ClosestStrategyObjective::for_demand(std::span<const double>{demand});
  const Placement initial = random_one_to_one(m, grid.universe_size(), rng);

  LocalSearchOptions serial;
  serial.threads = 1;
  serial.objective = &objective;
  const LocalSearchResult reference = local_search_placement(m, grid, initial, serial);

  for (std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    LocalSearchOptions parallel = serial;
    parallel.threads = threads;
    const LocalSearchResult result = local_search_placement(m, grid, initial, parallel);
    EXPECT_EQ(result.placement.site_of, reference.placement.site_of)
        << "threads=" << threads;
    EXPECT_EQ(result.moves, reference.moves) << "threads=" << threads;
    EXPECT_EQ(result.objective, reference.objective) << "threads=" << threads;
  }
}

TEST(ClosestLocalSearch, NeverWorsensTheObjective) {
  const LatencyMatrix m = net::small_synth(18, 137);
  const quorum::MajorityQuorum majority{5, 3};
  common::Rng rng{41};
  const ClosestStrategyObjective objective{61.0};
  for (int trial = 0; trial < 5; ++trial) {
    const Placement initial = random_one_to_one(m, 5, rng);
    const double before = objective.evaluate(m, majority, initial);
    LocalSearchOptions options;
    options.objective = &objective;
    const LocalSearchResult result = local_search_placement(m, majority, initial, options);
    EXPECT_LE(result.objective, before + 1e-12);
    EXPECT_NEAR(result.objective, objective.evaluate(m, majority, result.placement), 1e-12);
    EXPECT_TRUE(result.placement.one_to_one());
  }
}

TEST(ClosestLocalSearch, ScenarioDemandObjectiveEndToEnd) {
  // The scenario helpers thread the Pareto demand vector into the closest
  // objective; the whole search stack must run on top of it.
  sim::ScenarioConfig config;
  config.site_count = 30;
  config.seed = 2026;
  const sim::Scenario scenario = sim::make_scenario(config);
  const ClosestStrategyObjective objective = scenario.closest_objective();
  EXPECT_GT(objective.alpha(), 0.0);
  EXPECT_EQ(objective.client_weights().size(), scenario.site_count());
  const quorum::GridQuorum grid{3};
  const PlacementSearchResult constructive = best_placement(
      scenario.matrix, grid, objective,
      [&](std::size_t v0) { return grid_placement_for_client(scenario.matrix, 3, v0); });
  LocalSearchOptions options;
  options.objective = &objective;
  options.threads = 1;
  const LocalSearchResult polished =
      local_search_placement(scenario.matrix, grid, constructive.placement, options);
  EXPECT_LE(polished.objective, constructive.avg_network_delay + 1e-9);
  EXPECT_NEAR(polished.objective,
              objective.evaluate(scenario.matrix, grid, polished.placement), 1e-12);
}

}  // namespace
}  // namespace qp::core
