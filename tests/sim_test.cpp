#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "sim/client_sites.hpp"
#include "sim/event_queue.hpp"
#include "sim/protocol_sim.hpp"

namespace qp::sim {
namespace {

using net::LatencyMatrix;

// -------------------------------------------------------------- EventQueue

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue<int> queue;
  std::vector<int> order;
  queue.schedule(3.0, 3);
  queue.schedule(1.0, 1);
  queue.schedule(2.0, 2);
  queue.run_all([&](int value) { order.push_back(value); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.executed(), 3u);
}

TEST(EventQueue, FifoAtEqualTimes) {
  EventQueue<int> queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(1.0, i);
  }
  queue.run_all([&](int value) { order.push_back(value); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EqualTimestampPopOrderIsInsertionOrderPinned) {
  // Pin the FIFO tie-break under heap churn: equal-timestamp events must pop
  // in scheduling order even when interleaved with earlier/later events and
  // with events scheduled from inside callbacks. A priority_queue without
  // the stable sequence counter passes the trivial all-equal case but fails
  // this one on some libstdc++ heap layouts, silently de-synchronizing
  // simulation runs across toolchains.
  EventQueue<int> queue;
  std::vector<int> order;
  queue.schedule(2.0, 10);
  queue.schedule(1.0, 0);
  queue.schedule(3.0, 20);
  queue.schedule(1.0, 1);
  queue.schedule(2.0, 11);
  queue.run_all([&](int value) {
    order.push_back(value);
    if (value == 0) {
      queue.schedule(2.0, 12);  // After both already-queued 2.0 events.
      queue.schedule(1.0, 2);   // After the other 1.0 event.
    }
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12, 20}));

  // Larger churn: 64 batches scheduled round-robin over 8 shared timestamps
  // must drain batch-insertion order within each timestamp.
  EventQueue<int> stress;
  std::vector<std::pair<int, int>> fired;  // (time index, insertion index).
  for (int i = 0; i < 64; ++i) {
    const int t = i % 8;
    stress.schedule(static_cast<double>(t), i);
  }
  stress.run_all([&](int i) { fired.emplace_back(i % 8, i); });
  ASSERT_EQ(fired.size(), 64u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second) << "at position " << i;
    } else {
      EXPECT_LT(fired[i - 1].first, fired[i].first) << "at position " << i;
    }
  }
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue<int> queue;
  int fired = 0;
  queue.schedule(1.0, 0);
  queue.run_all([&](int value) {
    ++fired;
    if (value == 0) queue.schedule(2.0, 1);
  });
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue<int> queue;
  int fired = 0;
  queue.schedule(1.0, 0);
  queue.schedule(5.0, 1);
  queue.run_until(3.0, [&](int) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue<int> queue;
  queue.schedule(5.0, 0);
  queue.run_all([](int) {});
  EXPECT_THROW(queue.schedule(1.0, 0), std::invalid_argument);
}

// ------------------------------------------------------------ Protocol sim

struct SimFixture {
  LatencyMatrix matrix = net::small_synth(16, 5);
  quorum::MajorityQuorum system{6, 5};  // Q/U with t = 1.
  core::Placement placement = core::best_majority_placement(matrix, system).placement;
  std::vector<std::size_t> clients =
      representative_client_sites(matrix, system, placement, 4);
};

TEST(ProtocolSim, DeterministicInSeed) {
  const SimFixture f;
  ProtocolSimConfig config;
  config.duration_ms = 2000.0;
  config.warmup_ms = 200.0;
  config.seed = 7;
  const auto a = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  const auto b = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  config.seed = 8;
  const auto c = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_NE(a.avg_response_ms, c.avg_response_ms);
}

TEST(ProtocolSim, ResponseAtLeastNetworkDelayPlusService) {
  const SimFixture f;
  ProtocolSimConfig config;
  config.duration_ms = 2000.0;
  config.warmup_ms = 200.0;
  const auto result = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_GT(result.completed_requests, 0u);
  // Every request waits at least its network delay plus one service time.
  EXPECT_GE(result.avg_response_ms,
            result.avg_network_delay_ms + config.service_time_ms - 1e-9);
  EXPECT_GE(result.response_stats.min(), result.network_stats.min() - 1e-9);
}

TEST(ProtocolSim, UnloadedSystemMatchesNetworkDelayClosely) {
  // One client, long RTTs: queueing is negligible, so response ~= network
  // delay + service.
  const SimFixture f;
  ProtocolSimConfig config;
  config.duration_ms = 3000.0;
  config.warmup_ms = 300.0;
  const std::vector<std::size_t> one_client{f.clients[0]};
  const auto result = run_protocol_sim(f.matrix, f.system, f.placement, one_client, config);
  EXPECT_NEAR(result.avg_response_ms, result.avg_network_delay_ms + config.service_time_ms,
              0.5);
}

TEST(ProtocolSim, ResponseGrowsWithClientCount) {
  const SimFixture f;
  ProtocolSimConfig config;
  config.duration_ms = 3000.0;
  config.warmup_ms = 300.0;
  config.seed = 11;
  config.clients_per_site = 1;
  const auto light = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  config.clients_per_site = 25;
  const auto heavy = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_GT(heavy.avg_response_ms, light.avg_response_ms);
  // Network delay distribution is load-independent (uniform quorum draws).
  EXPECT_NEAR(heavy.avg_network_delay_ms, light.avg_network_delay_ms,
              0.15 * light.avg_network_delay_ms);
  EXPECT_GT(heavy.avg_server_busy_fraction, light.avg_server_busy_fraction);
}

TEST(ProtocolSim, ClosedLoopThroughputConsistency) {
  // Little's law sanity: completed requests ~= clients * window / mean response.
  const SimFixture f;
  ProtocolSimConfig config;
  config.duration_ms = 4000.0;
  config.warmup_ms = 500.0;
  config.clients_per_site = 2;
  const auto result = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  const double clients = static_cast<double>(f.clients.size() * config.clients_per_site);
  const double predicted = clients * config.duration_ms / result.avg_response_ms;
  EXPECT_NEAR(static_cast<double>(result.completed_requests), predicted, 0.15 * predicted);
}

TEST(ProtocolSim, ClosestStrategyReducesNetworkDelay) {
  const SimFixture f;
  ProtocolSimConfig config;
  config.duration_ms = 2000.0;
  config.warmup_ms = 200.0;
  const auto uniform = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  config.use_closest_strategy = true;
  const auto closest = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_LE(closest.avg_network_delay_ms, uniform.avg_network_delay_ms + 1e-9);
}

TEST(ProtocolSim, SingletonProtocol) {
  const LatencyMatrix m = net::small_synth(8, 9);
  const quorum::SingletonQuorum singleton;
  const core::Placement placement = core::singleton_placement(m);
  const std::vector<std::size_t> clients{0, 1, 2};
  ProtocolSimConfig config;
  config.duration_ms = 1000.0;
  config.warmup_ms = 100.0;
  const auto result = run_protocol_sim(m, singleton, placement, clients, config);
  EXPECT_GT(result.completed_requests, 0u);
}

TEST(ProtocolSim, ValidatesConfig) {
  const SimFixture f;
  ProtocolSimConfig config;
  config.clients_per_site = 0;
  EXPECT_THROW(
      (void)run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config),
      std::invalid_argument);
  config.clients_per_site = 1;
  config.duration_ms = -1.0;
  EXPECT_THROW(
      (void)run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config),
      std::invalid_argument);
  config.duration_ms = 100.0;
  EXPECT_THROW((void)run_protocol_sim(f.matrix, f.system, f.placement, {}, config),
               std::invalid_argument);
  const std::vector<std::size_t> bad_site{99};
  EXPECT_THROW((void)run_protocol_sim(f.matrix, f.system, f.placement, bad_site, config),
               std::out_of_range);
}

// ------------------------------------------------------------ Client sites

TEST(ClientSites, ApproximateThePopulationAverage) {
  const SimFixture f;
  std::vector<double> delays(f.matrix.size());
  double total = 0.0;
  for (std::size_t v = 0; v < f.matrix.size(); ++v) {
    const auto values = core::element_distances(f.matrix, f.placement, v);
    delays[v] = f.system.expected_max_uniform(values);
    total += delays[v];
  }
  const double average = total / static_cast<double>(f.matrix.size());

  const auto sites = representative_client_sites(f.matrix, f.system, f.placement, 4);
  ASSERT_EQ(sites.size(), 4u);
  double chosen_total = 0.0;
  for (std::size_t s : sites) chosen_total += delays[s];
  const double chosen_average = chosen_total / 4.0;
  // The chosen sites' average is closer to the population average than the
  // population spread.
  double worst_gap = 0.0;
  for (double d : delays) worst_gap = std::max(worst_gap, std::abs(d - average));
  EXPECT_LE(std::abs(chosen_average - average), worst_gap);
}

TEST(ClientSites, CountValidation) {
  const SimFixture f;
  EXPECT_THROW(
      (void)representative_client_sites(f.matrix, f.system, f.placement, 0),
      std::invalid_argument);
  EXPECT_THROW((void)representative_client_sites(f.matrix, f.system, f.placement,
                                                 f.matrix.size() + 1),
               std::invalid_argument);
  const auto all = representative_client_sites(f.matrix, f.system, f.placement,
                                               f.matrix.size());
  EXPECT_EQ(all.size(), f.matrix.size());
}

}  // namespace
}  // namespace qp::sim
