// The discrete-event queueing engine (sim/engine): determinism across
// thread counts, queueing-theory sanity (M/M/1), outage draining, finite
// queues, bursty arrivals, explicit-strategy sampling frequencies, and the
// analytic-vs-simulated validation band the acceptance criteria pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "eval/sim_validation.hpp"
#include "net/latency_matrix.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "sim/arrivals.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"
#include "sim/strategy_sampler.hpp"

namespace qp::sim {
namespace {

struct EngineFixture {
  net::LatencyMatrix matrix = net::small_synth(16, 5);
  quorum::MajorityQuorum system{6, 5};  // Q/U with t = 1.
  core::Placement placement = core::best_majority_placement(matrix, system).placement;

  /// Uniform rates scaled so the busiest site reaches `rho` under the
  /// balanced strategy's load.
  [[nodiscard]] std::vector<double> rates_for(double rho, double service_ms = 1.0) const {
    const std::vector<double> load =
        core::site_loads_balanced(system, placement, matrix.size());
    return scale_rates_to_peak_utilization(std::vector<double>(matrix.size(), 1.0), load,
                                           service_ms, rho);
  }
};

void expect_replications_identical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p95_ms, b.p95_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.site_utilization, b.site_utilization);
  ASSERT_EQ(a.replications.size(), b.replications.size());
  for (std::size_t r = 0; r < a.replications.size(); ++r) {
    EXPECT_EQ(a.replications[r].response.mean(), b.replications[r].response.mean());
    EXPECT_EQ(a.replications[r].response.count(), b.replications[r].response.count());
    EXPECT_EQ(a.replications[r].response_samples, b.replications[r].response_samples);
    EXPECT_EQ(a.replications[r].site_utilization, b.replications[r].site_utilization);
  }
}

TEST(Engine, BitIdenticalAcrossThreadCounts) {
  const EngineFixture f;
  EngineConfig config;
  config.warmup_ms = 200.0;
  config.duration_ms = 1'500.0;
  config.replications = 4;
  config.master_seed = 11;
  const std::vector<double> rates = f.rates_for(0.5);

  common::ThreadPool serial{1};
  common::ThreadPool parallel{4};
  config.pool = &serial;
  const EngineResult a = run_engine(f.matrix, f.system, f.placement, rates, config);
  config.pool = &parallel;
  const EngineResult b = run_engine(f.matrix, f.system, f.placement, rates, config);
  expect_replications_identical(a, b);
  // And against the shared global pool (whatever QP_THREADS says).
  config.pool = nullptr;
  const EngineResult c = run_engine(f.matrix, f.system, f.placement, rates, config);
  expect_replications_identical(a, c);
}

TEST(Engine, DeterministicInSeedAndSensitiveToIt) {
  const EngineFixture f;
  EngineConfig config;
  config.warmup_ms = 200.0;
  config.duration_ms = 1'000.0;
  config.replications = 2;
  const std::vector<double> rates = f.rates_for(0.4);
  const EngineResult a = run_engine(f.matrix, f.system, f.placement, rates, config);
  const EngineResult b = run_engine(f.matrix, f.system, f.placement, rates, config);
  expect_replications_identical(a, b);
  config.master_seed += 1;
  const EngineResult c = run_engine(f.matrix, f.system, f.placement, rates, config);
  EXPECT_NE(a.mean_response_ms, c.mean_response_ms);
}

TEST(Engine, ReplicationSeedsFormDistinctStreams) {
  EXPECT_NE(replication_seed(1, 0), replication_seed(1, 1));
  EXPECT_NE(replication_seed(1, 0), replication_seed(2, 0));
  EXPECT_EQ(replication_seed(7, 3), replication_seed(7, 3));
}

// M/M/1 sanity: a single zero-RTT site under Poisson arrivals and
// exponential service is the textbook queue, so the simulated mean sojourn
// must match 1/(mu - lambda) = S/(1 - rho) within sampling confidence.
TEST(Engine, MM1SojournMatchesAnalytic) {
  const net::LatencyMatrix matrix{std::vector<std::vector<double>>{{0.0}}};
  const quorum::SingletonQuorum singleton;
  const core::Placement placement{{0}};
  const double service = 1.0;
  const double rho = 0.6;
  const std::vector<double> rates{rho / service};

  EngineConfig config;
  config.service_model = ServiceModel::Exponential;
  config.service_time_ms = service;
  config.warmup_ms = 5'000.0;
  config.duration_ms = 30'000.0;
  config.replications = 3;
  config.master_seed = 20070601;
  const EngineResult result = run_engine(matrix, singleton, placement, rates, config);

  const double analytic = service / (1.0 - rho);  // 2.5 ms.
  EXPECT_GT(result.completed, 40'000u);
  EXPECT_NEAR(result.mean_response_ms, analytic, 0.08 * analytic);
  EXPECT_NEAR(result.peak_utilization, rho, 0.05);
}

TEST(Engine, OutageDropsMessagesAndDrains) {
  const EngineFixture f;
  EngineConfig config;
  config.warmup_ms = 500.0;
  config.duration_ms = 4'000.0;
  config.replications = 2;
  config.strategy = EngineStrategy::Closest;
  const std::vector<double> rates = f.rates_for(0.5);

  const EngineResult clean = run_engine(f.matrix, f.system, f.placement, rates, config);
  EXPECT_EQ(clean.failed, 0u);
  EXPECT_EQ(clean.dropped_messages, 0u);
  EXPECT_EQ(clean.issued, clean.completed);

  config.outages = {{f.placement.site_of[0], 1'000.0, 2'500.0}};
  const EngineResult outage = run_engine(f.matrix, f.system, f.placement, rates, config);
  EXPECT_GT(outage.dropped_messages, 0u);
  EXPECT_GT(outage.failed, 0u);
  // Every windowed request resolved — the queues drained after the window.
  EXPECT_EQ(outage.issued, outage.completed + outage.failed);
  EXPECT_GT(outage.completed, 0u);
  // The victim site serves less of the window than in the clean run.
  EXPECT_LT(outage.site_utilization[f.placement.site_of[0]],
            clean.site_utilization[f.placement.site_of[0]]);
}

TEST(Engine, FiniteQueueRejectsUnderOverload) {
  const EngineFixture f;
  EngineConfig config;
  config.warmup_ms = 200.0;
  config.duration_ms = 2'000.0;
  config.replications = 1;
  config.queue_capacity = 4;
  const std::vector<double> rates = f.rates_for(1.5);  // Past saturation.
  const EngineResult result = run_engine(f.matrix, f.system, f.placement, rates, config);
  EXPECT_GT(result.rejected_arrivals, 0u);
  EXPECT_EQ(result.issued, result.completed + result.failed);
  // The finite queue bounds the sojourn: no response can exceed the max
  // RTT plus capacity * service.
  double max_rtt = 0.0;
  for (std::size_t a = 0; a < f.matrix.size(); ++a) {
    for (std::size_t b = 0; b < f.matrix.size(); ++b) {
      max_rtt = std::max(max_rtt, f.matrix.rtt(a, b));
    }
  }
  EXPECT_LE(result.response.max(),
            max_rtt + static_cast<double>(config.queue_capacity + 1) *
                          config.service_time_ms);
}

TEST(Engine, MmppBurstsInflateResponseAtEqualMeanRate) {
  const EngineFixture f;
  EngineConfig config;
  config.warmup_ms = 500.0;
  config.duration_ms = 6'000.0;
  config.replications = 2;
  const std::vector<double> rates = f.rates_for(0.6);
  const EngineResult poisson = run_engine(f.matrix, f.system, f.placement, rates, config);
  config.arrival_model = ArrivalModel::Mmpp;
  config.mmpp = {4.0, 400.0, 1'600.0};
  const EngineResult bursty = run_engine(f.matrix, f.system, f.placement, rates, config);
  EXPECT_GT(bursty.mean_response_ms, poisson.mean_response_ms);
  EXPECT_GT(bursty.p99_ms, poisson.p99_ms);
}

TEST(Engine, ValidatesConfiguration) {
  const EngineFixture f;
  EngineConfig config;
  const std::vector<double> rates = f.rates_for(0.3);
  EXPECT_THROW((void)run_engine(f.matrix, f.system, f.placement, {}, config),
               std::invalid_argument);
  const std::vector<double> zero(f.matrix.size(), 0.0);
  EXPECT_THROW((void)run_engine(f.matrix, f.system, f.placement, zero, config),
               std::invalid_argument);
  config.replications = 0;
  EXPECT_THROW((void)run_engine(f.matrix, f.system, f.placement, rates, config),
               std::invalid_argument);
  config.replications = 1;
  config.strategy = EngineStrategy::Explicit;  // Without a strategy table.
  EXPECT_THROW((void)run_engine(f.matrix, f.system, f.placement, rates, config),
               std::invalid_argument);
  config.strategy = EngineStrategy::Balanced;
  config.outages = {{f.matrix.size() + 5, 0.0, 1.0}};
  EXPECT_THROW((void)run_engine(f.matrix, f.system, f.placement, rates, config),
               std::out_of_range);
}

// ------------------------------------------------------- arrival processes

TEST(ArrivalGenerator, PoissonMatchesConfiguredRate) {
  common::Rng rng{5};
  ArrivalGenerator generator{ArrivalModel::Poisson, 0.8, {}, rng};
  double t = 0.0;
  std::size_t count = 0;
  const double horizon = 200'000.0;
  while ((t = generator.next(t, rng)) < horizon) ++count;
  EXPECT_NEAR(static_cast<double>(count) / horizon, 0.8, 0.02);
}

TEST(ArrivalGenerator, MmppPreservesTheMeanRate) {
  common::Rng rng{6};
  ArrivalGenerator generator{ArrivalModel::Mmpp, 0.8, {4.0, 400.0, 1'600.0}, rng};
  double t = 0.0;
  std::size_t count = 0;
  const double horizon = 400'000.0;
  while ((t = generator.next(t, rng)) < horizon) ++count;
  EXPECT_NEAR(static_cast<double>(count) / horizon, 0.8, 0.04);
}

TEST(ArrivalGenerator, ValidatesConfiguration) {
  common::Rng rng{7};
  EXPECT_THROW((ArrivalGenerator{ArrivalModel::Poisson, 0.0, {}, rng}),
               std::invalid_argument);
  // burst = 5 with ON fraction 1/4 needs OFF rate (1 - 5/4)/(3/4) < 0.
  EXPECT_THROW((ArrivalGenerator{ArrivalModel::Mmpp, 1.0, {5.0, 500.0, 1'500.0}, rng}),
               std::invalid_argument);
  EXPECT_THROW((ArrivalGenerator{ArrivalModel::Mmpp, 1.0, {0.5, 500.0, 1'500.0}, rng}),
               std::invalid_argument);
}

// ------------------------------------------------------- strategy sampling

/// Chi-squared statistic of observed counts vs expected probabilities.
double chi_squared(std::span<const std::size_t> observed, std::span<const double> expected,
                   std::size_t draws, std::size_t& df) {
  double statistic = 0.0;
  df = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expect = expected[i] * static_cast<double>(draws);
    if (expect <= 0.0) {
      EXPECT_EQ(observed[i], 0u);  // Zero-probability bins must stay empty.
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expect;
    statistic += diff * diff / expect;
    ++df;
  }
  df = df > 0 ? df - 1 : 0;
  return statistic;
}

TEST(StrategySampler, ExplicitFrequenciesMatchLpWeights) {
  // LP-optimize the Grid(3x3) access strategy on a 9-site topology with
  // moderately tight capacities, then check that the sampler's empirical
  // per-client frequencies reproduce the LP's probability rows.
  const net::LatencyMatrix matrix = net::small_synth(9, 13);
  const quorum::GridQuorum grid{3};
  const core::Placement placement = core::best_grid_placement(matrix, 3).placement;
  const std::vector<double> caps(matrix.size(), 1.25 * grid.optimal_load());
  const core::StrategyLpResult lp =
      core::optimize_access_strategy(matrix, grid, placement, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);

  const QuorumSampler sampler =
      QuorumSampler::explicit_strategy(lp.strategy, matrix.size(), grid);
  common::Rng rng{99};
  quorum::Quorum scratch;
  const std::size_t draws = 40'000;
  // chi-squared 0.999 critical values by degrees of freedom (1..8).
  const double critical[] = {10.83, 13.82, 16.27, 18.47, 20.52, 22.46, 24.32, 26.12};
  for (std::size_t client : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
    std::vector<std::size_t> observed(lp.strategy.quorums.size(), 0);
    for (std::size_t i = 0; i < draws; ++i) {
      const quorum::Quorum& drawn = sampler.draw(client, rng, scratch);
      const auto it = std::find(lp.strategy.quorums.begin(), lp.strategy.quorums.end(),
                                drawn);
      ASSERT_NE(it, lp.strategy.quorums.end());
      ++observed[static_cast<std::size_t>(it - lp.strategy.quorums.begin())];
    }
    std::size_t df = 0;
    const double statistic =
        chi_squared(observed, lp.strategy.probability[client], draws, df);
    if (df == 0) continue;  // Point mass: nothing to test beyond the bins.
    ASSERT_LE(df, std::size(critical));
    EXPECT_LT(statistic, critical[df - 1]) << "client " << client;
  }
}

TEST(StrategySampler, BalancedMatchesSampleQuorums) {
  // The single-draw overrides (Majority AND Grid) must match
  // sample_quorums(1, rng)[0] for the same rng state — the documented
  // sample_quorum contract the balanced sampler relies on.
  const quorum::MajorityQuorum majority{7, 4};
  const quorum::GridQuorum grid{3};
  for (const quorum::QuorumSystem* system :
       {static_cast<const quorum::QuorumSystem*>(&majority),
        static_cast<const quorum::QuorumSystem*>(&grid)}) {
    common::Rng a{21};
    common::Rng b{21};
    const QuorumSampler sampler = QuorumSampler::balanced(*system);
    quorum::Quorum scratch;
    for (int i = 0; i < 50; ++i) {
      const quorum::Quorum& drawn = sampler.draw(0, a, scratch);
      EXPECT_EQ(drawn, system->sample_quorums(1, b)[0]) << system->name();
    }
  }
}

TEST(StrategySampler, ClosestExportRoundTripsThroughObjective) {
  // Objective::export_strategy gives the engine the exact per-client
  // argmin quorums the closest objective evaluates.
  const net::LatencyMatrix matrix = net::small_synth(12, 3);
  const quorum::GridQuorum grid{2};
  const core::Placement placement = core::best_grid_placement(matrix, 2).placement;
  const core::ClosestStrategyObjective objective{0.0};
  const auto exported = objective.export_strategy(matrix, grid, placement);
  ASSERT_TRUE(exported.has_value());
  exported->validate(matrix.size(), grid.universe_size());
  const auto chosen = core::closest_quorums(matrix, grid, placement);
  const QuorumSampler sampler =
      QuorumSampler::explicit_strategy(*exported, matrix.size(), grid);
  common::Rng rng{1};
  quorum::Quorum scratch;
  for (std::size_t v = 0; v < matrix.size(); ++v) {
    EXPECT_EQ(sampler.draw(v, rng, scratch), chosen[v]);
  }
  // Balanced objectives export nothing: the engine samples analytically.
  EXPECT_FALSE(core::LoadAwareObjective{0.1}.export_strategy(matrix, grid, placement)
                   .has_value());
}

// ------------------------------------------------------------- validation

TEST(SimValidation, LowUtilizationAgreesWithAnalyticWithin3Percent) {
  eval::SimValidationConfig config;
  config.rho_values = {0.3};
  config.warmup_ms = 1'000.0;
  config.duration_ms = 8'000.0;
  config.replications = 2;
  const auto points = eval::sim_validation_sweep(net::planetlab50_synth(), config);
  ASSERT_EQ(points.size(), 4u);  // 2 systems x {closest, balanced}.
  for (const auto& p : points) {
    EXPECT_LT(std::abs(p.divergence_pct), 3.0)
        << p.system << "/" << p.strategy << ": analytic " << p.analytic_ms
        << " ms vs simulated " << p.simulated_ms << " ms";
    EXPECT_NEAR(p.peak_utilization, 0.3, 0.05) << p.system << "/" << p.strategy;
    EXPECT_GT(p.completed, 1'000u);
  }
}

TEST(SimValidation, ShardsPartitionAndReproduceTheRows) {
  eval::SimValidationConfig config;
  config.rho_values = {0.2};
  config.warmup_ms = 100.0;
  config.duration_ms = 600.0;
  config.replications = 1;
  const auto full = eval::sim_validation_sweep(net::planetlab50_synth(), config);
  config.shard = {0, 2};
  const auto even = eval::sim_validation_sweep(net::planetlab50_synth(), config);
  config.shard = {1, 2};
  const auto odd = eval::sim_validation_sweep(net::planetlab50_synth(), config);
  ASSERT_EQ(even.size() + odd.size(), full.size());
  std::vector<const eval::SimValidationPoint*> merged;
  for (const auto& p : even) merged.push_back(&p);
  for (const auto& p : odd) merged.push_back(&p);
  for (const auto& p : full) {
    const auto it = std::find_if(merged.begin(), merged.end(), [&](const auto* q) {
      return q->system == p.system && q->strategy == p.strategy &&
             q->target_rho == p.target_rho;
    });
    ASSERT_NE(it, merged.end());
    // Point seeds derive from the row index, not the shard, so sharded rows
    // reproduce the unsharded run bitwise.
    EXPECT_EQ((*it)->simulated_ms, p.simulated_ms);
    EXPECT_EQ((*it)->analytic_ms, p.analytic_ms);
  }
}

TEST(SimValidation, ScenarioRowsCarryDemandWeighting) {
  eval::SimValidationConfig config;
  config.rho_values = {0.2};
  config.warmup_ms = 200.0;
  config.duration_ms = 1'000.0;
  config.replications = 1;
  const auto points =
      eval::sim_validation_scenario(sim::daxlist161_scenario(), config);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_EQ(p.scenario, "daxlist-161");
    EXPECT_TRUE(std::isfinite(p.simulated_ms));
    EXPECT_GT(p.simulated_ms, 0.0);
    EXPECT_GT(p.analytic_ms, 0.0);
    EXPECT_GT(p.completed, 0u);
    // The scaling targeted rho 0.2 on the busiest site; the measured peak
    // should be in that neighbourhood even over a short window.
    EXPECT_GT(p.peak_utilization, 0.05);
    EXPECT_LT(p.peak_utilization, 0.45);
  }
}

}  // namespace
}  // namespace qp::sim
