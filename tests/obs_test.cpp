// The observability layer (src/obs): histogram bucketing and cross-shard
// merge, registration-ordered deterministic export, the invariant that
// metrics and probes never perturb computed results (bitwise parity with
// observability on, off, and at any thread count across the instrumented
// layers), Chrome trace-event output shape, and the disabled-mode
// zero-allocation contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/local_search.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "sim/engine.hpp"

// --- global operator new instrumentation (for the zero-allocation test) ---
// Flag-gated so the counter costs one relaxed load per allocation and the
// rest of the suite is unaffected. Both operators route through
// malloc/free, so the compiler's new/delete-pairing heuristic (which cannot
// see replaced global operators as a matched pair) is a false positive here.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace qp::obs {
namespace {

/// Re-enables observability and clears accumulated state when a test ends,
/// so suites are order-independent.
struct ObsGuard {
  ObsGuard() {
    set_enabled(true);
    reset();
  }
  ~ObsGuard() {
    set_enabled(true);
    reset();
  }
};

std::uint64_t counter_value(const std::vector<MetricSnapshot>& snap,
                            const std::string& name) {
  for (const MetricSnapshot& m : snap) {
    if (m.name == name) return m.value;
  }
  ADD_FAILURE() << "metric not found: " << name;
  return 0;
}

const MetricSnapshot* find_metric(const std::vector<MetricSnapshot>& snap,
                                  const std::string& name) {
  for (const MetricSnapshot& m : snap) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// --- bucketing ------------------------------------------------------------

TEST(ObsHistogram, BucketIndexIsAPureLogFunction) {
  // Non-positives and NaN land in bucket 0.
  EXPECT_EQ(bucket_index(0.0), 0u);
  EXPECT_EQ(bucket_index(-1.0), 0u);
  EXPECT_EQ(bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Every positive value falls strictly below its bucket's upper bound and
  // at/above the previous bucket's.
  for (double value : {1e-8, 1e-3, 0.5, 1.0, 1.5, 2.0, 10.0, 1e3, 1e9, 1e300}) {
    const std::size_t b = bucket_index(value);
    ASSERT_GE(b, 1u);
    ASSERT_LT(b, kHistogramBuckets);
    EXPECT_LT(value, bucket_upper_bound(b)) << value;
    if (b > 1 && b < kHistogramBuckets - 1) {
      EXPECT_GE(value, bucket_upper_bound(b - 1)) << value;
    }
  }
  // Bucket boundaries are powers of two; a value on a boundary opens the
  // next bucket (half-open intervals).
  EXPECT_EQ(bucket_index(2.0), bucket_index(3.9));
  EXPECT_NE(bucket_index(2.0), bucket_index(4.0));
  // The overflow bucket has an infinite upper bound.
  EXPECT_EQ(bucket_index(std::numeric_limits<double>::infinity()),
            kHistogramBuckets - 1);
  EXPECT_TRUE(std::isinf(bucket_upper_bound(kHistogramBuckets - 1)));
  EXPECT_EQ(bucket_upper_bound(0), 0.0);
}

TEST(ObsHistogram, RecordsCountMinMaxAndBuckets) {
  const ObsGuard guard;
  const Histogram h = histogram("obs_test.h.basic");
  h.record(1.0);
  h.record(2.5);
  h.record(0.25);
  h.record(-3.0);  // Bucket 0, still counted; min folds to the true minimum.
  const std::vector<MetricSnapshot> snap = snapshot();
  const MetricSnapshot* m = find_metric(snap, "obs_test.h.basic");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::Histogram);
  EXPECT_EQ(m->histogram.count, 4u);
  EXPECT_EQ(m->histogram.min, -3.0);
  EXPECT_EQ(m->histogram.max, 2.5);
  const std::uint64_t total = std::accumulate(m->histogram.buckets.begin(),
                                              m->histogram.buckets.end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(m->histogram.buckets[0], 1u);  // The -3.0 record.
  EXPECT_EQ(m->histogram.buckets[bucket_index(1.0)], 1u);
  // Percentiles come back as bucket upper bounds, clamped to the max.
  EXPECT_GE(m->histogram.percentile(50.0), 0.25);
  EXPECT_LE(m->histogram.percentile(99.0), 2.5);
}

TEST(ObsHistogram, MergeAcrossThreadsMatchesSerialTotals) {
  const ObsGuard guard;
  const Histogram h = histogram("obs_test.h.merge");
  const Counter c = counter("obs_test.c.merge");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1'000;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          h.record(0.5 * t + 0.001 * i);
          c.add(2);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  // Exited threads retire their shards; the merged totals must equal the
  // serial sum regardless of retirement order.
  const std::vector<MetricSnapshot> snap = snapshot();
  const MetricSnapshot* m = find_metric(snap, "obs_test.h.merge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->histogram.count, std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(m->histogram.min, 0.0);
  EXPECT_EQ(m->histogram.max, 0.5 * (kThreads - 1) + 0.001 * (kPerThread - 1));
  EXPECT_EQ(counter_value(snap, "obs_test.c.merge"),
            std::uint64_t{kThreads} * kPerThread * 2);
}

// --- registration and export ---------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameMetricAndKindMismatchThrows) {
  const ObsGuard guard;
  const Counter a = counter("obs_test.reg.same");
  const Counter b = counter("obs_test.reg.same");
  a.add(1);
  b.add(2);
  EXPECT_EQ(counter_value(snapshot(), "obs_test.reg.same"), 3u);
  EXPECT_THROW((void)gauge("obs_test.reg.same"), std::logic_error);
  EXPECT_THROW((void)histogram("obs_test.reg.same"), std::logic_error);
}

TEST(ObsRegistry, ExportIsRegistrationOrderedAndDeterministic) {
  const ObsGuard guard;
  // Registration order (not name order) dictates export order.
  (void)counter("obs_test.order.zz");
  (void)counter("obs_test.order.aa");
  (void)gauge("obs_test.order.mm");
  const std::vector<MetricSnapshot> snap = snapshot();
  std::size_t zz = snap.size(), aa = snap.size(), mm = snap.size();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (snap[i].name == "obs_test.order.zz") zz = i;
    if (snap[i].name == "obs_test.order.aa") aa = i;
    if (snap[i].name == "obs_test.order.mm") mm = i;
  }
  ASSERT_LT(zz, snap.size());
  EXPECT_LT(zz, aa);
  EXPECT_LT(aa, mm);
  // Two exports at a quiescent point are byte-identical.
  std::ostringstream json1, json2, csv1, csv2;
  export_json(json1);
  export_json(json2);
  export_csv(csv1);
  export_csv(csv2);
  EXPECT_EQ(json1.str(), json2.str());
  EXPECT_EQ(csv1.str(), csv2.str());
  EXPECT_NE(json1.str().find("\"qp_obs_version\""), std::string::npos);
  // CSV header + one row per metric.
  EXPECT_NE(csv1.str().find("name,kind,value"), std::string::npos);
}

TEST(ObsRegistry, GaugeMergesByMaxAcrossShards) {
  const ObsGuard guard;
  const Gauge g = gauge("obs_test.g.max");
  g.set(3.0);
  std::thread([&] { g.set(7.0); }).join();
  std::thread([&] { g.set(5.0); }).join();
  const MetricSnapshot* m = find_metric(snapshot(), "obs_test.g.max");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->gauge_set);
  EXPECT_EQ(m->gauge_value, 7.0);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  const ObsGuard guard;
  const Counter c = counter("obs_test.reset.c");
  c.add(41);
  reset();
  EXPECT_EQ(counter_value(snapshot(), "obs_test.reset.c"), 0u);
  c.add(1);
  EXPECT_EQ(counter_value(snapshot(), "obs_test.reset.c"), 1u);
}

TEST(ObsRegistry, DisabledRecordingIsDropped) {
  const ObsGuard guard;
  const Counter c = counter("obs_test.disabled.c");
  set_enabled(false);
  EXPECT_FALSE(enabled());
  c.add(100);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(counter_value(snapshot(), "obs_test.disabled.c"), 1u);
}

// --- the observe-never-perturb invariant ----------------------------------

core::LocalSearchResult run_search(std::size_t threads) {
  const net::LatencyMatrix m = net::small_synth(24, 5);
  const quorum::GridQuorum grid{3};
  // A deliberately poor spread-out start so the search takes many moves.
  std::vector<std::size_t> sites(9);
  for (std::size_t i = 0; i < sites.size(); ++i) sites[i] = 24 - 1 - i * 2;
  core::LocalSearchOptions options;
  options.threads = threads;
  return core::local_search_placement(m, grid, core::Placement{sites}, options);
}

TEST(ObsParity, LocalSearchBitwiseIdenticalOnOffAndThreaded) {
  const ObsGuard guard;
  set_enabled(true);
  const core::LocalSearchResult on1 = run_search(1);
  const core::LocalSearchResult on4 = run_search(4);
  set_enabled(false);
  const core::LocalSearchResult off1 = run_search(1);
  const core::LocalSearchResult off16 = run_search(16);
  for (const core::LocalSearchResult* r : {&on4, &off1, &off16}) {
    EXPECT_EQ(on1.objective, r->objective);  // Bitwise: EQ on doubles.
    EXPECT_EQ(on1.moves, r->moves);
    EXPECT_EQ(on1.placement.site_of, r->placement.site_of);
  }
}

sim::EngineResult run_small_engine(common::ThreadPool* pool, double probe_ms) {
  const net::LatencyMatrix m = net::small_synth(16, 5);
  const quorum::MajorityQuorum system{6, 5};
  const core::Placement placement =
      core::best_majority_placement(m, system).placement;
  const std::vector<double> load =
      core::site_loads_balanced(system, placement, m.size());
  const std::vector<double> rates = sim::scale_rates_to_peak_utilization(
      std::vector<double>(m.size(), 1.0), load, 1.0, 0.5);
  sim::EngineConfig config;
  config.warmup_ms = 200.0;
  config.duration_ms = 1'200.0;
  config.replications = 3;
  config.master_seed = 17;
  config.pool = pool;
  config.probe_interval_ms = probe_ms;
  return sim::run_engine(m, system, placement, rates, config);
}

void expect_engine_identical(const sim::EngineResult& a, const sim::EngineResult& b) {
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.site_utilization, b.site_utilization);
  ASSERT_EQ(a.replications.size(), b.replications.size());
  for (std::size_t r = 0; r < a.replications.size(); ++r) {
    EXPECT_EQ(a.replications[r].response_samples, b.replications[r].response_samples);
  }
}

TEST(ObsParity, EngineBitwiseIdenticalOnOffThreadedAndProbed) {
  const ObsGuard guard;
  common::ThreadPool serial{1};
  common::ThreadPool wide{4};
  set_enabled(true);
  const sim::EngineResult on = run_small_engine(&serial, 0.0);
  const sim::EngineResult on_wide = run_small_engine(&wide, 0.0);
  const sim::EngineResult on_probed = run_small_engine(&wide, 100.0);
  set_enabled(false);
  const sim::EngineResult off = run_small_engine(&serial, 0.0);
  const sim::EngineResult off_probed = run_small_engine(&serial, 100.0);
  expect_engine_identical(on, on_wide);
  expect_engine_identical(on, on_probed);
  expect_engine_identical(on, off);
  expect_engine_identical(on, off_probed);
  // Probing itself is independent of QP_OBS and fills the time series.
  EXPECT_TRUE(on.replications[0].probes.empty());
  ASSERT_FALSE(on_probed.replications[0].probes.empty());
  ASSERT_FALSE(off_probed.replications[0].probes.empty());
  ASSERT_EQ(on_probed.replications[0].probes.size(),
            off_probed.replications[0].probes.size());
  const sim::EngineProbe& p = on_probed.replications[0].probes.front();
  EXPECT_EQ(p.t_ms, 200.0);
  EXPECT_GE(p.issued, p.completed + p.failed + p.abandoned);
}

TEST(ObsParity, EngineMetricsMatchEngineTotals) {
  const ObsGuard guard;
  set_enabled(true);
  reset();
  common::ThreadPool serial{1};
  const sim::EngineResult result = run_small_engine(&serial, 0.0);
  const std::vector<MetricSnapshot> snap = snapshot();
  EXPECT_EQ(counter_value(snap, "sim.engine.requests_issued"), result.issued);
  EXPECT_EQ(counter_value(snap, "sim.engine.requests_completed"), result.completed);
  const MetricSnapshot* h = find_metric(snap, "sim.engine.response_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, result.completed);
}

TEST(ObsParity, TimeseriesCsvHasHeaderAndOneRowPerProbe) {
  const ObsGuard guard;
  common::ThreadPool serial{1};
  const sim::EngineResult probed = run_small_engine(&serial, 250.0);
  std::ostringstream out;
  sim::write_engine_timeseries_csv(probed, out);
  const std::string csv = out.str();
  std::size_t rows = 0;
  for (char ch : csv) rows += ch == '\n' ? 1 : 0;
  std::size_t probes = 0;
  for (const sim::ReplicationResult& r : probed.replications) probes += r.probes.size();
  EXPECT_EQ(rows, probes + 1);  // Header + one row per probe.
  EXPECT_EQ(csv.rfind("replication,t_ms,busy_sites", 0), 0u);
}

// --- tracing --------------------------------------------------------------

TEST(ObsTrace, EmitsWellFormedChromeTraceJson) {
  const std::string path =
      testing::TempDir() + "/qp_obs_trace_test.json";
  ASSERT_TRUE(start_trace(path));
  EXPECT_TRUE(trace_enabled());
  {
    QP_TRACE_SPAN("obs_test.outer");
    { QP_TRACE_SPAN("obs_test.inner"); }
  }
  std::thread([] {
    QP_TRACE_SPAN("obs_test.worker");
    trace_flush_current_thread();
  }).join();
  stop_trace();
  EXPECT_FALSE(trace_enabled());

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  // Array-format trace: opens with '[', closes with ']' (stop_trace wrote
  // the tail), and carries our spans as complete ("ph":"X") events.
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find_last_of(']'), std::string::npos);
  for (const char* name : {"obs_test.outer", "obs_test.inner", "obs_test.worker"}) {
    EXPECT_NE(trace.find(std::string{"\"name\":\""} + name + "\""),
              std::string::npos)
        << name;
  }
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\""), std::string::npos);
  // Balanced braces — every event object closes.
  std::ptrdiff_t depth = 0;
  for (char ch : trace) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(ObsTrace, SecondStartWhileActiveFails) {
  const std::string path = testing::TempDir() + "/qp_obs_trace_test2.json";
  ASSERT_TRUE(start_trace(path));
  EXPECT_FALSE(start_trace(path));
  stop_trace();
  std::remove(path.c_str());
}

// --- disabled-mode cost ---------------------------------------------------

TEST(ObsCost, DisabledRecordingAllocatesNothing) {
  const ObsGuard guard;
  // Register and touch once while enabled so shards/registry are warm, and
  // poke the trace gate so its lazy sink/env-check init happens up front.
  const Counter c = counter("obs_test.cost.c");
  const Histogram h = histogram("obs_test.cost.h");
  c.add();
  h.record(1.0);
  { TraceSpan warm{"obs_test.cost.warm"}; }
  set_enabled(false);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    c.add();
    h.record(static_cast<double>(i));
    TraceSpan span{"obs_test.cost.span"};  // Tracing off: no clock, no alloc.
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
  // And the enabled steady-state path (shards already grown) stays
  // allocation-free too: recording is a predicated thread-local store.
  set_enabled(true);
  c.add();
  h.record(0.5);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    c.add();
    h.record(static_cast<double>(i));
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace qp::obs
