// Generic property suite: every quorum system in the library must satisfy
// the same contract. Parameterized over factories so each new construction
// is automatically held to all invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "quorum/tree.hpp"

namespace qp::quorum {
namespace {

struct SystemCase {
  std::string label;
  std::function<std::unique_ptr<QuorumSystem>()> make;
};

void PrintTo(const SystemCase& c, std::ostream* os) { *os << c.label; }

class QuorumContract : public ::testing::TestWithParam<SystemCase> {
 protected:
  std::unique_ptr<QuorumSystem> system_ = GetParam().make();
};

TEST_P(QuorumContract, EnumerationCountMatchesQuorumCount) {
  const auto quorums = system_->enumerate_quorums(100'000);
  EXPECT_DOUBLE_EQ(static_cast<double>(quorums.size()), system_->quorum_count());
  EXPECT_FALSE(quorums.empty());
}

TEST_P(QuorumContract, QuorumsAreSortedDistinctInRange) {
  std::set<Quorum> seen;
  for (const Quorum& quorum : system_->enumerate_quorums(100'000)) {
    EXPECT_TRUE(std::is_sorted(quorum.begin(), quorum.end()));
    EXPECT_EQ(std::adjacent_find(quorum.begin(), quorum.end()), quorum.end());
    EXPECT_FALSE(quorum.empty());
    EXPECT_LT(quorum.back(), system_->universe_size());
    EXPECT_TRUE(seen.insert(quorum).second) << "duplicate quorum";
  }
}

TEST_P(QuorumContract, PairwiseIntersection) {
  EXPECT_TRUE(system_->verify_intersection(100'000));
}

TEST_P(QuorumContract, BestQuorumIsGloballyOptimal) {
  common::Rng rng{0xBEEF};
  const auto quorums = system_->enumerate_quorums(100'000);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> values(system_->universe_size());
    for (double& v : values) v = rng.uniform(0.0, 100.0);
    const Quorum best = system_->best_quorum(values);
    double best_max = 0.0;
    for (std::size_t u : best) best_max = std::max(best_max, values[u]);
    for (const Quorum& quorum : quorums) {
      double worst = 0.0;
      for (std::size_t u : quorum) worst = std::max(worst, values[u]);
      EXPECT_GE(worst + 1e-9, best_max);
    }
    // And the best quorum is an actual quorum of the system.
    EXPECT_NE(std::find(quorums.begin(), quorums.end(), best), quorums.end());
  }
}

TEST_P(QuorumContract, ExpectedMaxMatchesEnumeration) {
  common::Rng rng{0xCAFE};
  const auto quorums = system_->enumerate_quorums(100'000);
  std::vector<double> values(system_->universe_size());
  for (double& v : values) v = rng.uniform(0.0, 10.0);
  double total = 0.0;
  for (const Quorum& quorum : quorums) {
    double worst = 0.0;
    for (std::size_t u : quorum) worst = std::max(worst, values[u]);
    total += worst;
  }
  EXPECT_NEAR(system_->expected_max_uniform(values),
              total / static_cast<double>(quorums.size()), 1e-9);
}

TEST_P(QuorumContract, ExpectedMaxIsMonotoneInValues) {
  common::Rng rng{0xF00D};
  std::vector<double> values(system_->universe_size());
  for (double& v : values) v = rng.uniform(1.0, 50.0);
  const double base = system_->expected_max_uniform(values);
  std::vector<double> bumped = values;
  for (double& v : bumped) v += 5.0;
  EXPECT_GE(system_->expected_max_uniform(bumped) + 1e-12, base);
  // Bounded by min and max element values.
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  EXPECT_GE(base + 1e-12, lo);
  EXPECT_LE(base, hi + 1e-12);
}

TEST_P(QuorumContract, UniformLoadMatchesEnumeration) {
  const auto quorums = system_->enumerate_quorums(100'000);
  std::vector<double> expected(system_->universe_size(), 0.0);
  for (const Quorum& quorum : quorums) {
    for (std::size_t u : quorum) expected[u] += 1.0;
  }
  for (double& e : expected) e /= static_cast<double>(quorums.size());
  const auto load = system_->uniform_load();
  ASSERT_EQ(load.size(), expected.size());
  for (std::size_t u = 0; u < load.size(); ++u) {
    EXPECT_NEAR(load[u], expected[u], 1e-9) << "element " << u;
  }
}

TEST_P(QuorumContract, OptimalLoadBounds) {
  // L_opt is at least 1/sqrt(n) (Naor-Wool) and at most 1.
  const double l_opt = system_->optimal_load();
  const double n = static_cast<double>(system_->universe_size());
  EXPECT_GE(l_opt + 1e-9, 1.0 / std::sqrt(n));
  EXPECT_LE(l_opt, 1.0 + 1e-12);
}

TEST_P(QuorumContract, SamplesAreValidQuorums) {
  common::Rng rng{0xABCD};
  const auto all = system_->enumerate_quorums(100'000);
  const std::set<Quorum> valid(all.begin(), all.end());
  for (const Quorum& quorum : system_->sample_quorums(50, rng)) {
    EXPECT_TRUE(valid.count(quorum)) << "sampled non-quorum";
  }
}

TEST_P(QuorumContract, TouchProbabilityConsistency) {
  // P(touch all elements' union) == 1; P(touch {u}) == uniform_load for
  // systems where every quorum hits u at most once (all of ours).
  std::vector<std::size_t> everything(system_->universe_size());
  for (std::size_t u = 0; u < everything.size(); ++u) everything[u] = u;
  EXPECT_NEAR(system_->uniform_touch_probability(everything), 1.0, 1e-12);
  const auto load = system_->uniform_load();
  for (std::size_t u = 0; u < std::min<std::size_t>(4, everything.size()); ++u) {
    const std::vector<std::size_t> single{u};
    EXPECT_NEAR(system_->uniform_touch_probability(single), load[u], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, QuorumContract,
    ::testing::Values(
        SystemCase{"Majority_3_2", [] { return std::make_unique<MajorityQuorum>(3, 2); }},
        SystemCase{"Majority_5_3", [] { return std::make_unique<MajorityQuorum>(5, 3); }},
        SystemCase{"Majority_7_5", [] { return std::make_unique<MajorityQuorum>(7, 5); }},
        SystemCase{"Majority_11_9",
                   [] { return std::make_unique<MajorityQuorum>(11, 9); }},
        SystemCase{"Grid_2", [] { return std::make_unique<GridQuorum>(2); }},
        SystemCase{"Grid_3", [] { return std::make_unique<GridQuorum>(3); }},
        SystemCase{"Grid_5", [] { return std::make_unique<GridQuorum>(5); }},
        SystemCase{"Grid_7", [] { return std::make_unique<GridQuorum>(7); }},
        SystemCase{"Singleton", [] { return std::make_unique<SingletonQuorum>(); }},
        SystemCase{"Tree_h1", [] { return std::make_unique<TreeQuorum>(1); }},
        SystemCase{"Tree_h2", [] { return std::make_unique<TreeQuorum>(2); }},
        SystemCase{"Tree_h3", [] { return std::make_unique<TreeQuorum>(3); }},
        SystemCase{"Fpp_2", [] { return std::make_unique<FppQuorum>(2); }},
        SystemCase{"Fpp_3", [] { return std::make_unique<FppQuorum>(3); }},
        SystemCase{"Fpp_5", [] { return std::make_unique<FppQuorum>(5); }}),
    [](const ::testing::TestParamInfo<SystemCase>& info) { return info.param.label; });

}  // namespace
}  // namespace qp::quorum
