#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/local_search.hpp"
#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

Placement random_one_to_one(const LatencyMatrix& m, std::size_t universe,
                            common::Rng& rng) {
  return Placement{rng.sample_without_replacement(m.size(), universe)};
}

TEST(LocalSearch, NeverWorsensTheObjective) {
  const LatencyMatrix m = net::small_synth(14, 5);
  const quorum::GridQuorum grid{2};
  common::Rng rng{9};
  for (int trial = 0; trial < 10; ++trial) {
    const Placement initial = random_one_to_one(m, 4, rng);
    const double before = average_uniform_network_delay(m, grid, initial);
    const LocalSearchResult result = local_search_placement(m, grid, initial);
    EXPECT_LE(result.objective, before + 1e-12);
    EXPECT_NEAR(result.objective,
                average_uniform_network_delay(m, grid, result.placement), 1e-12);
    EXPECT_TRUE(result.placement.one_to_one());
  }
}

TEST(LocalSearch, ReachesLocalOptimum) {
  // Re-running local search on its own output must make zero moves.
  const LatencyMatrix m = net::small_synth(12, 7);
  const quorum::GridQuorum grid{2};
  common::Rng rng{11};
  const Placement initial = random_one_to_one(m, 4, rng);
  const LocalSearchResult first = local_search_placement(m, grid, initial);
  const LocalSearchResult second = local_search_placement(m, grid, first.placement);
  EXPECT_EQ(second.moves, 0u);
  EXPECT_DOUBLE_EQ(second.objective, first.objective);
}

TEST(LocalSearch, ImprovesBadInitialPlacements) {
  // Start from the WORST ball (farthest sites from the median): local search
  // must find something strictly better.
  const LatencyMatrix m = net::small_synth(16, 13);
  const quorum::GridQuorum grid{2};
  const std::size_t median = m.median_site();
  auto farthest = m.ball(median, m.size());
  std::reverse(farthest.begin(), farthest.end());
  farthest.resize(4);
  const Placement bad{farthest};
  const double before = average_uniform_network_delay(m, grid, bad);
  const LocalSearchResult result = local_search_placement(m, grid, bad);
  EXPECT_LT(result.objective, before);
  EXPECT_GT(result.moves, 0u);
}

TEST(LocalSearch, ConstructedGridPlacementIsNearLocalOptimum) {
  // The ablation claim: §4.1.1's constructive placement leaves little on
  // the table for single-relocation local search.
  const LatencyMatrix m = net::small_synth(16, 17);
  const quorum::GridQuorum grid{3};
  const PlacementSearchResult constructed = best_grid_placement(m, 3);
  const LocalSearchResult polished = local_search_placement(m, grid, constructed.placement);
  EXPECT_LE(polished.objective, constructed.avg_network_delay + 1e-12);
  // Improvement is bounded (< 15% on these topologies).
  EXPECT_GE(polished.objective, 0.85 * constructed.avg_network_delay);
}

TEST(LocalSearch, WorksForMajorities) {
  const LatencyMatrix m = net::small_synth(12, 19);
  const quorum::MajorityQuorum majority{5, 3};
  common::Rng rng{21};
  const Placement initial = random_one_to_one(m, 5, rng);
  const LocalSearchResult result = local_search_placement(m, majority, initial);
  // For majorities the optimum one-to-one placement is a ball; local search
  // from anywhere must not beat the exhaustive best-ball search.
  const PlacementSearchResult ball = best_majority_placement(m, majority);
  EXPECT_GE(result.objective + 1e-9, ball.avg_network_delay);
}

TEST(LocalSearch, RespectsRoundCap) {
  const LatencyMatrix m = net::small_synth(16, 23);
  const quorum::GridQuorum grid{2};
  const std::size_t median = m.median_site();
  auto farthest = m.ball(median, m.size());
  std::reverse(farthest.begin(), farthest.end());
  farthest.resize(4);
  LocalSearchOptions options;
  options.max_rounds = 1;
  const LocalSearchResult result =
      local_search_placement(m, grid, Placement{farthest}, options);
  EXPECT_LE(result.moves, 1u);
}

TEST(LocalSearch, RejectsManyToOneInitial) {
  const LatencyMatrix m = net::small_synth(8, 29);
  const quorum::GridQuorum grid{2};
  const Placement many{{0, 0, 1, 2}};
  EXPECT_THROW((void)local_search_placement(m, grid, many), std::invalid_argument);
}

}  // namespace
}  // namespace qp::core
