#include <gtest/gtest.h>

#include <cmath>

#include "core/placement.hpp"
#include "net/latency_matrix.hpp"
#include "net/random_graphs.hpp"
#include "quorum/grid.hpp"

namespace qp::net {
namespace {

TEST(Waxman, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WaxmanConfig config;
    config.node_count = 30;
    config.alpha = 0.1;  // Sparse: component stitching must kick in.
    config.seed = seed;
    const Graph g = waxman_graph(config);
    EXPECT_TRUE(g.connected()) << "seed=" << seed;
    EXPECT_EQ(g.node_count(), 30u);
  }
}

TEST(Waxman, DeterministicInSeed) {
  WaxmanConfig config;
  config.node_count = 20;
  config.seed = 42;
  const Graph a = waxman_graph(config);
  const Graph b = waxman_graph(config);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  config.seed = 43;
  const Graph c = waxman_graph(config);
  // Different seeds virtually always give different edge counts at n = 20.
  EXPECT_TRUE(a.edge_count() != c.edge_count() ||
              a.neighbors(0).size() != c.neighbors(0).size());
}

TEST(Waxman, DensityGrowsWithAlpha) {
  WaxmanConfig sparse;
  sparse.node_count = 40;
  sparse.alpha = 0.05;
  sparse.seed = 7;
  WaxmanConfig dense = sparse;
  dense.alpha = 0.9;
  EXPECT_GT(waxman_graph(dense).edge_count(), waxman_graph(sparse).edge_count());
}

TEST(Waxman, EdgeLengthsWithinGeometricBounds) {
  WaxmanConfig config;
  config.node_count = 25;
  config.region_size_ms = 30.0;
  config.seed = 3;
  const Graph g = waxman_graph(config);
  const double max_rtt = 2.0 * 30.0 * std::numbers::sqrt2 + 1e-9;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const Edge& e : g.neighbors(v)) {
      EXPECT_GT(e.length, 0.0);
      EXPECT_LE(e.length, max_rtt);
    }
  }
}

TEST(Waxman, RejectsBadConfig) {
  WaxmanConfig config;
  config.node_count = 1;
  EXPECT_THROW((void)waxman_graph(config), std::invalid_argument);
  config.node_count = 10;
  config.alpha = 0.0;
  EXPECT_THROW((void)waxman_graph(config), std::invalid_argument);
  config.alpha = 0.5;
  config.beta = 0.0;
  EXPECT_THROW((void)waxman_graph(config), std::invalid_argument);
}

TEST(Waxman, FeedsTheFullPlacementPipeline) {
  // Graph -> metric closure -> placement -> evaluation, end to end.
  WaxmanConfig config;
  config.node_count = 25;
  config.seed = 11;
  const Graph g = waxman_graph(config);
  const LatencyMatrix m = LatencyMatrix::from_graph(g);
  EXPECT_TRUE(m.satisfies_triangle_inequality(1e-9));
  const core::PlacementSearchResult placed = core::best_grid_placement(m, 3);
  EXPECT_TRUE(placed.placement.one_to_one());
  EXPECT_GT(placed.avg_network_delay, 0.0);
}

}  // namespace
}  // namespace qp::net
