// Property sweeps over the response-time model (TEST_P over seeds):
// relationships that must hold for every topology/placement combination.
#include <gtest/gtest.h>

#include <vector>

#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace qp::core {
namespace {

class ResponseModelSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  net::LatencyMatrix matrix_ = net::small_synth(13, GetParam());
  quorum::GridQuorum grid_{2};
  Placement placement_ = best_grid_placement(matrix_, 2).placement;
};

TEST_P(ResponseModelSweep, ResponseMonotoneInAlpha) {
  double previous_closest = -1.0;
  double previous_balanced = -1.0;
  for (double alpha : {0.0, 5.0, 20.0, 80.0, 320.0}) {
    const double closest = evaluate_closest(matrix_, grid_, placement_, alpha).avg_response_ms;
    const double balanced =
        evaluate_balanced(matrix_, grid_, placement_, alpha).avg_response_ms;
    EXPECT_GE(closest + 1e-9, previous_closest);
    EXPECT_GE(balanced + 1e-9, previous_balanced);
    previous_closest = closest;
    previous_balanced = balanced;
  }
}

TEST_P(ResponseModelSweep, AlphaZeroResponseEqualsNetworkDelay) {
  const Evaluation closest = evaluate_closest(matrix_, grid_, placement_, 0.0);
  EXPECT_NEAR(closest.avg_response_ms, closest.avg_network_delay_ms, 1e-12);
  const Evaluation balanced = evaluate_balanced(matrix_, grid_, placement_, 0.0);
  EXPECT_NEAR(balanced.avg_response_ms, balanced.avg_network_delay_ms, 1e-12);
}

TEST_P(ResponseModelSweep, LpStrategyNeverWorseThanBalancedAtItsOwnLoads) {
  // Give the LP exactly the balanced strategy's loads as capacities: the
  // balanced strategy is feasible, so the optimum's *network delay* cannot
  // be worse than balanced's.
  const Evaluation balanced = evaluate_balanced(matrix_, grid_, placement_, 0.0);
  std::vector<double> caps = balanced.site_load;
  for (double& c : caps) c = c * (1.0 + 1e-9) + 1e-12;
  const StrategyLpResult lp = optimize_access_strategy(matrix_, grid_, placement_, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  EXPECT_LE(lp.avg_network_delay, balanced.avg_network_delay_ms + 1e-6);
}

TEST_P(ResponseModelSweep, LpRespectsLoadsSoResponseBoundedAtAnyAlpha) {
  // With caps = balanced loads, the LP strategy's per-site loads are no
  // higher than balanced's, so for ANY alpha its response time is bounded
  // by balanced's network delay plus alpha times the max balanced load...
  // the checkable invariant: site loads dominated by caps.
  const Evaluation balanced = evaluate_balanced(matrix_, grid_, placement_, 0.0);
  std::vector<double> caps = balanced.site_load;
  for (double& c : caps) c = c * (1.0 + 1e-9) + 1e-12;
  const StrategyLpResult lp = optimize_access_strategy(matrix_, grid_, placement_, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  const auto loads = site_loads_explicit(lp.strategy, placement_, matrix_.size());
  for (std::size_t w = 0; w < matrix_.size(); ++w) {
    EXPECT_LE(loads[w], caps[w] + 1e-6);
  }
}

TEST_P(ResponseModelSweep, ClosestQuorumGivesMinimalNetworkDelayPerClient) {
  const Evaluation closest = evaluate_closest(matrix_, grid_, placement_, 0.0);
  const Evaluation balanced = evaluate_balanced(matrix_, grid_, placement_, 0.0);
  // Per-client: deterministic closest <= expected uniform.
  for (std::size_t v = 0; v < matrix_.size(); ++v) {
    EXPECT_LE(closest.per_client_response[v], balanced.per_client_response[v] + 1e-9);
  }
}

TEST_P(ResponseModelSweep, SiteLoadTotalsAreStrategyInvariant) {
  // Under PerElement accounting, total load = expected quorum size for any
  // strategy on any placement.
  const double quorum_size = 3.0;  // Grid(2).
  for (const std::vector<double>& loads :
       {site_loads_closest(matrix_, grid_, placement_),
        site_loads_balanced(grid_, placement_, matrix_.size())}) {
    double total = 0.0;
    for (double l : loads) total += l;
    EXPECT_NEAR(total, quorum_size, 1e-9);
  }
}

TEST_P(ResponseModelSweep, MajorityAnalyticAgreesWithGridStyleEnumeration) {
  const quorum::MajorityQuorum majority{5, 3};
  const Placement placement = best_majority_placement(matrix_, majority).placement;
  const double alpha = 17.0;
  const Evaluation analytic = evaluate_balanced(matrix_, majority, placement, alpha);
  ExplicitStrategy uniform;
  uniform.quorums = majority.enumerate_quorums(100);
  uniform.probability.assign(
      matrix_.size(), std::vector<double>(uniform.quorums.size(),
                                          1.0 / static_cast<double>(uniform.quorums.size())));
  const Evaluation enumerated =
      evaluate_explicit(matrix_, majority, placement, alpha, uniform);
  EXPECT_NEAR(analytic.avg_response_ms, enumerated.avg_response_ms, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseModelSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
}  // namespace qp::core
