#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

// ---------------------------------------------------------- Placement type

TEST(Placement, SupportSetAndOneToOne) {
  const Placement p{{3, 1, 3, 2}};
  EXPECT_EQ(p.support_set(), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_FALSE(p.one_to_one());
  const Placement q{{0, 2, 1}};
  EXPECT_TRUE(q.one_to_one());
}

TEST(Placement, Validation) {
  const Placement p{{0, 5}};
  EXPECT_THROW(p.validate(3), std::out_of_range);
  EXPECT_NO_THROW(p.validate(6));
  const Placement empty{};
  EXPECT_THROW(empty.validate(3), std::invalid_argument);
}

TEST(Placement, ElementDistances) {
  const LatencyMatrix m{{{0.0, 10.0, 20.0}, {10.0, 0.0, 5.0}, {20.0, 5.0, 0.0}}};
  const Placement p{{2, 0}};
  EXPECT_EQ(element_distances(m, p, 1), (std::vector<double>{5.0, 10.0}));
}

// ------------------------------------------------------------ Majority ball

TEST(MajorityBall, UsesClosestNodes) {
  const LatencyMatrix m = net::small_synth(12, 4);
  const Placement p = majority_ball_placement(m, 5, 3);
  EXPECT_EQ(p.universe_size(), 5u);
  EXPECT_TRUE(p.one_to_one());
  EXPECT_EQ(p.site_of, m.ball(3, 5));
  // v0 itself hosts an element (distance 0 is minimal).
  EXPECT_NE(std::find(p.site_of.begin(), p.site_of.end(), 3u), p.site_of.end());
}

TEST(MajorityBall, RejectsOversizedUniverse) {
  const LatencyMatrix m = net::small_synth(4, 4);
  EXPECT_THROW((void)majority_ball_placement(m, 5, 0), std::invalid_argument);
  EXPECT_THROW((void)majority_ball_placement(m, 0, 0), std::invalid_argument);
}

// For a single client, the ball placement minimizes the uniform-strategy
// expected delay among ALL one-to-one placements (exhaustively checked).
TEST(MajorityBall, SingleClientOptimalityBruteForce) {
  const LatencyMatrix m = net::small_synth(7, 11);
  const quorum::MajorityQuorum system{3, 2};
  const std::size_t v0 = 2;
  const Placement ball = majority_ball_placement(m, 3, v0);

  const auto delay_for = [&](const Placement& p) {
    const std::vector<double> values = element_distances(m, p, v0);
    return system.expected_max_uniform(values);
  };
  const double ball_delay = delay_for(ball);

  // All injective placements of 3 elements onto 7 sites.
  std::vector<std::size_t> sites(m.size());
  std::iota(sites.begin(), sites.end(), std::size_t{0});
  for (std::size_t a : sites) {
    for (std::size_t b : sites) {
      for (std::size_t c : sites) {
        if (a == b || b == c || a == c) continue;
        EXPECT_GE(delay_for(Placement{{a, b, c}}) + 1e-9, ball_delay);
      }
    }
  }
}

// --------------------------------------------------------------- Grid ctor

TEST(GridPlacement, IsOneToOneOntoBall) {
  const LatencyMatrix m = net::small_synth(12, 21);
  const Placement p = grid_placement_for_client(m, 3, 4);
  EXPECT_EQ(p.universe_size(), 9u);
  EXPECT_TRUE(p.one_to_one());
  auto support = p.support_set();
  auto ball = m.ball(4, 9);
  std::sort(ball.begin(), ball.end());
  EXPECT_EQ(support, ball);
}

TEST(GridPlacement, FarthestNodeOnTopLeft) {
  const LatencyMatrix m = net::small_synth(10, 5);
  const std::size_t v0 = 1;
  const Placement p = grid_placement_for_client(m, 3, v0);
  // Cell (0,0) hosts the farthest node of the ball.
  const auto ball = m.ball(v0, 9);
  EXPECT_EQ(p.site_of[0], ball.back());
}

// The paper's inductive construction is optimal for a single client under
// the uniform strategy; verify for k = 2 against all placements of the ball.
TEST(GridPlacement, SingleClientOptimalityBruteForceK2) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const LatencyMatrix m = net::small_synth(6, seed);
    const quorum::GridQuorum system{2};
    const std::size_t v0 = 0;
    const Placement constructed = grid_placement_for_client(m, 2, v0);
    const auto delay_for = [&](const Placement& p) {
      const std::vector<double> values = element_distances(m, p, v0);
      return system.expected_max_uniform(values);
    };
    const double constructed_delay = delay_for(constructed);

    // All one-to-one placements of the same 4 ball nodes onto the 4 cells.
    std::vector<std::size_t> ball = m.ball(v0, 4);
    std::sort(ball.begin(), ball.end());
    do {
      EXPECT_GE(delay_for(Placement{ball}) + 1e-9, constructed_delay) << "seed=" << seed;
    } while (std::next_permutation(ball.begin(), ball.end()));
  }
}

TEST(GridPlacement, RejectsOversizedGrid) {
  const LatencyMatrix m = net::small_synth(8, 4);
  EXPECT_THROW((void)grid_placement_for_client(m, 3, 0), std::invalid_argument);
  EXPECT_THROW((void)grid_placement_for_client(m, 0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- Singleton

TEST(SingletonPlacement, UsesMedian) {
  const LatencyMatrix m{{{0.0, 1.0, 2.0}, {1.0, 0.0, 1.0}, {2.0, 1.0, 0.0}}};
  const Placement p = singleton_placement(m);
  EXPECT_EQ(p.site_of, (std::vector<std::size_t>{1}));
  const Placement many = singleton_placement(m, 4);
  EXPECT_EQ(many.site_of, (std::vector<std::size_t>{1, 1, 1, 1}));
}

// Lin's theorem: the singleton's average delay is within 2x of any
// placement of any quorum system (spot-check against grid placements).
TEST(SingletonPlacement, TwoApproximationHolds) {
  const LatencyMatrix m = net::small_synth(16, 9);
  const quorum::SingletonQuorum single;
  const Placement median = singleton_placement(m);
  const double singleton_delay = average_uniform_network_delay(m, single, median);

  const quorum::GridQuorum grid{3};
  const PlacementSearchResult best = best_grid_placement(m, 3);
  EXPECT_LE(singleton_delay, 2.0 * best.avg_network_delay + 1e-9);

  const quorum::MajorityQuorum majority{5, 3};
  const PlacementSearchResult best_majority = best_majority_placement(m, majority);
  EXPECT_LE(singleton_delay, 2.0 * best_majority.avg_network_delay + 1e-9);
}

// ------------------------------------------------------------- Best-client

TEST(BestPlacement, PicksBestCandidate) {
  const LatencyMatrix m = net::small_synth(10, 2);
  const quorum::MajorityQuorum system{3, 2};
  const PlacementSearchResult best = best_majority_placement(m, system);
  // The winner must be at least as good as every per-candidate placement.
  for (std::size_t v0 = 0; v0 < m.size(); ++v0) {
    const Placement p = majority_ball_placement(m, 3, v0);
    EXPECT_GE(average_uniform_network_delay(m, system, p) + 1e-9, best.avg_network_delay);
  }
}

TEST(BestPlacement, RestrictedCandidates) {
  const LatencyMatrix m = net::small_synth(10, 2);
  const quorum::MajorityQuorum system{3, 2};
  const std::vector<std::size_t> candidates{4};
  const PlacementSearchResult best = best_majority_placement(m, system, candidates);
  EXPECT_EQ(best.anchor_client, 4u);
  const Placement expected = majority_ball_placement(m, 3, 4);
  EXPECT_EQ(best.placement.site_of, expected.site_of);
}

TEST(BestPlacement, GridSearchConsistent) {
  const LatencyMatrix m = net::small_synth(12, 13);
  const PlacementSearchResult best = best_grid_placement(m, 3);
  const quorum::GridQuorum system{3};
  EXPECT_NEAR(best.avg_network_delay,
              average_uniform_network_delay(m, system, best.placement), 1e-12);
  const Placement direct = grid_placement_for_client(m, 3, best.anchor_client);
  EXPECT_EQ(best.placement.site_of, direct.site_of);
}

}  // namespace
}  // namespace qp::core
