// Parity suite for the incremental evaluation subsystem: the delta and
// workspace paths must match the naive objective to 1e-9 across all four
// quorum-system families, random matrices, and randomized move sequences —
// and the parallel neighborhood scan must pick the exact same move as the
// serial one.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/delta_eval.hpp"
#include "core/eval_workspace.hpp"
#include "core/local_search.hpp"
#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/tree.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

struct SystemCase {
  std::string label;
  std::unique_ptr<quorum::QuorumSystem> system;
};

/// The four quorum-system families of the paper's evaluation: Majority
/// (order-statistic delta path), Grid (row/column path), FPP and Tree
/// (enumerated path).
std::vector<SystemCase> all_systems() {
  std::vector<SystemCase> cases;
  cases.push_back({"majority", std::make_unique<quorum::MajorityQuorum>(9, 5)});
  cases.push_back({"grid", std::make_unique<quorum::GridQuorum>(3)});
  cases.push_back({"fpp", std::make_unique<quorum::FppQuorum>(2)});
  cases.push_back({"tree", std::make_unique<quorum::TreeQuorum>(2)});
  return cases;
}

Placement random_one_to_one(const LatencyMatrix& m, std::size_t universe,
                            common::Rng& rng) {
  return Placement{rng.sample_without_replacement(m.size(), universe)};
}

double naive_objective_if_moved(const LatencyMatrix& m, const quorum::QuorumSystem& system,
                                Placement placement, std::size_t element,
                                std::size_t site) {
  placement.site_of[element] = site;
  return average_uniform_network_delay(m, system, placement);
}

TEST(DeltaEval, MatchesNaiveObjectiveAtConstruction) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 8, 101);
    common::Rng rng{7};
    for (int trial = 0; trial < 5; ++trial) {
      const Placement placement = random_one_to_one(m, n, rng);
      const DeltaEvaluator eval{m, *test_case.system, placement};
      const double naive = average_uniform_network_delay(m, *test_case.system, placement);
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " trial " << trial;
    }
  }
}

TEST(DeltaEval, CandidateMovesMatchNaiveAcrossAllSystems) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 10, 211);
    common::Rng rng{13};
    const Placement placement = random_one_to_one(m, n, rng);
    const DeltaEvaluator eval{m, *test_case.system, placement};
    // Every (element, site) candidate, including no-op moves to the current
    // site and moves onto sites used by other elements.
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t w = 0; w < m.size(); ++w) {
        const double delta = eval.objective_if_moved(u, w);
        const double naive =
            naive_objective_if_moved(m, *test_case.system, placement, u, w);
        EXPECT_NEAR(delta, naive, 1e-9 * std::max(1.0, naive))
            << test_case.label << " move " << u << "->" << w;
      }
    }
  }
}

TEST(DeltaEval, RandomizedMoveSequencesStayInParity) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 12, 307);
    common::Rng rng{29};
    Placement placement = random_one_to_one(m, n, rng);
    DeltaEvaluator eval{m, *test_case.system, placement};
    for (int step = 0; step < 20; ++step) {
      const std::size_t u = static_cast<std::size_t>(rng.below(n));
      const std::size_t w = static_cast<std::size_t>(rng.below(m.size()));
      const double predicted = eval.objective_if_moved(u, w);
      eval.apply_move(u, w);
      placement.site_of[u] = w;
      const double naive = average_uniform_network_delay(m, *test_case.system, placement);
      EXPECT_NEAR(predicted, naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
    }
  }
}

TEST(DeltaEval, IncrementalRepairMatchesFreshRebuildBitwise) {
  // apply_move now repairs the per-client tables in place instead of
  // rebuilding; the repaired state must equal a freshly-constructed
  // evaluator's (same sorted multisets, same accumulation order), for the
  // network-delay objective and the load-aware one-to-one invariant alike.
  const LoadAwareObjective load_aware{9.0};
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 11, 317);
    for (const Objective* objective :
         {&network_delay_objective(), static_cast<const Objective*>(&load_aware)}) {
      common::Rng rng{37};
      Placement placement = random_one_to_one(m, n, rng);
      DeltaEvaluator eval{m, *test_case.system, placement, *objective};
      std::vector<bool> used(m.size(), false);
      for (std::size_t site : placement.site_of) used[site] = true;
      for (int step = 0; step < 12; ++step) {
        // One-to-one moves to unused sites: the single-coordinate repair path.
        const std::size_t u = static_cast<std::size_t>(rng.below(n));
        std::size_t w = static_cast<std::size_t>(rng.below(m.size()));
        while (used[w]) w = (w + 1) % m.size();
        used[placement.site_of[u]] = false;
        used[w] = true;
        eval.apply_move(u, w);
        placement.site_of[u] = w;
        const DeltaEvaluator fresh{m, *test_case.system, placement, *objective};
        EXPECT_EQ(eval.objective(), fresh.objective())
            << test_case.label << " step " << step << " objective bitwise";
        // Candidate answers from repaired tables match the fresh ones too.
        const std::size_t cu = static_cast<std::size_t>(rng.below(n));
        const std::size_t cw = static_cast<std::size_t>(rng.below(m.size()));
        EXPECT_EQ(eval.objective_if_moved(cu, cw), fresh.objective_if_moved(cu, cw))
            << test_case.label << " step " << step << " candidate bitwise";
      }
    }
  }
}

TEST(DeltaEval, RandomMatricesManyTrials) {
  // Random matrices: several seeds, Majority + Grid (the two analytic
  // delta paths), every candidate move checked against the naive objective.
  for (std::uint64_t seed : {401u, 402u, 403u}) {
    const LatencyMatrix m = net::small_synth(15, seed);
    common::Rng rng{seed};
    const quorum::MajorityQuorum majority{7, 4};
    const quorum::GridQuorum grid{2};
    for (const quorum::QuorumSystem* system :
         {static_cast<const quorum::QuorumSystem*>(&majority),
          static_cast<const quorum::QuorumSystem*>(&grid)}) {
      const std::size_t n = system->universe_size();
      const Placement placement = random_one_to_one(m, n, rng);
      const DeltaEvaluator eval{m, *system, placement};
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t w = 0; w < m.size(); ++w) {
          const double naive = naive_objective_if_moved(m, *system, placement, u, w);
          EXPECT_NEAR(eval.objective_if_moved(u, w), naive, 1e-9 * std::max(1.0, naive))
              << system->name() << " seed " << seed;
        }
      }
    }
  }
}

TEST(DeltaEval, WorkspaceEvaluationMatchesPublicEntryPoint) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 6, 503);
    common::Rng rng{31};
    const Placement placement = random_one_to_one(m, n, rng);
    EvalWorkspace workspace;
    const double ws =
        average_uniform_network_delay_ws(m, *test_case.system, placement, workspace);
    const double naive = average_uniform_network_delay(m, *test_case.system, placement);
    EXPECT_DOUBLE_EQ(ws, naive) << test_case.label;
  }
}

TEST(DeltaEvalLocalSearch, DeltaEngineMatchesNaiveEngine) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 601);
    common::Rng rng{43};
    const Placement initial = random_one_to_one(m, n, rng);

    LocalSearchOptions naive_options;
    naive_options.engine = LocalSearchEngine::Naive;
    const LocalSearchResult naive =
        local_search_placement(m, *test_case.system, initial, naive_options);

    LocalSearchOptions delta_options;
    delta_options.engine = LocalSearchEngine::Delta;
    delta_options.threads = 1;
    const LocalSearchResult delta =
        local_search_placement(m, *test_case.system, initial, delta_options);

    EXPECT_EQ(delta.placement.site_of, naive.placement.site_of) << test_case.label;
    EXPECT_EQ(delta.moves, naive.moves) << test_case.label;
    EXPECT_NEAR(delta.objective, naive.objective, 1e-9 * std::max(1.0, naive.objective))
        << test_case.label;
  }
}

TEST(DeltaEvalLocalSearch, ParallelScanReturnsSameMovesAsSerial) {
  // The determinism guarantee: any thread count yields the identical move
  // sequence and bit-identical objective.
  const LatencyMatrix m = net::small_synth(24, 701);
  const quorum::GridQuorum grid{3};
  common::Rng rng{53};
  const Placement initial = random_one_to_one(m, grid.universe_size(), rng);

  LocalSearchOptions serial;
  serial.threads = 1;
  const LocalSearchResult reference = local_search_placement(m, grid, initial, serial);

  for (std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    LocalSearchOptions parallel;
    parallel.threads = threads;
    const LocalSearchResult result = local_search_placement(m, grid, initial, parallel);
    EXPECT_EQ(result.placement.site_of, reference.placement.site_of)
        << "threads=" << threads;
    EXPECT_EQ(result.moves, reference.moves) << "threads=" << threads;
    EXPECT_EQ(result.objective, reference.objective) << "threads=" << threads;
  }
}

TEST(DeltaEvalLocalSearch, ParallelBestPlacementMatchesSerialReference) {
  const LatencyMatrix m = net::small_synth(20, 809);
  const quorum::MajorityQuorum majority{5, 3};
  // Hand-rolled serial scan with the historical tie-breaking.
  PlacementSearchResult expected;
  expected.avg_network_delay = std::numeric_limits<double>::infinity();
  for (std::size_t v0 = 0; v0 < m.size(); ++v0) {
    Placement placement = majority_ball_placement(m, majority.universe_size(), v0);
    const double delay = average_uniform_network_delay(m, majority, placement);
    if (delay < expected.avg_network_delay) {
      expected.avg_network_delay = delay;
      expected.anchor_client = v0;
      expected.placement = std::move(placement);
    }
  }
  const PlacementSearchResult actual = best_majority_placement(m, majority);
  EXPECT_EQ(actual.anchor_client, expected.anchor_client);
  EXPECT_EQ(actual.placement.site_of, expected.placement.site_of);
  EXPECT_EQ(actual.avg_network_delay, expected.avg_network_delay);
}

TEST(DeltaEval, RejectsMismatchedPlacement) {
  const LatencyMatrix m = net::small_synth(10, 907);
  const quorum::GridQuorum grid{2};
  const Placement wrong_size{{0, 1, 2}};  // Grid(2x2) needs 4 elements.
  EXPECT_THROW((DeltaEvaluator{m, grid, wrong_size}), std::invalid_argument);
}

TEST(DeltaEval, ApplyMoveRejectsOutOfRange) {
  const LatencyMatrix m = net::small_synth(10, 911);
  const quorum::GridQuorum grid{2};
  common::Rng rng{3};
  DeltaEvaluator eval{m, grid, random_one_to_one(m, 4, rng)};
  EXPECT_THROW(eval.apply_move(99, 0), std::out_of_range);
  EXPECT_THROW(eval.apply_move(0, 99), std::out_of_range);
}

}  // namespace
}  // namespace qp::core
