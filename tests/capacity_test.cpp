#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "net/synthetic.hpp"

namespace qp::core {
namespace {

TEST(UniformLevels, MatchesEquation77) {
  // c_i = L_opt + i * (1 - L_opt) / 10.
  const auto levels = uniform_capacity_levels(0.3, 10);
  ASSERT_EQ(levels.size(), 10u);
  EXPECT_NEAR(levels[0], 0.37, 1e-12);
  EXPECT_NEAR(levels[4], 0.65, 1e-12);
  EXPECT_NEAR(levels[9], 1.0, 1e-12);
  EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
}

TEST(UniformLevels, AllAboveOptimalLoad) {
  for (double l_opt : {0.1, 0.36, 0.9}) {
    for (double c : uniform_capacity_levels(l_opt, 10)) {
      EXPECT_GT(c, l_opt);
      EXPECT_LE(c, 1.0 + 1e-12);
    }
  }
}

TEST(UniformLevels, DegenerateLoptOne) {
  const auto levels = uniform_capacity_levels(1.0, 10);
  for (double c : levels) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(UniformLevels, RejectsBadInput) {
  EXPECT_THROW((void)uniform_capacity_levels(0.0, 10), std::invalid_argument);
  EXPECT_THROW((void)uniform_capacity_levels(-0.5, 10), std::invalid_argument);
  EXPECT_THROW((void)uniform_capacity_levels(1.5, 10), std::invalid_argument);
  EXPECT_THROW((void)uniform_capacity_levels(0.5, 0), std::invalid_argument);
}

TEST(UniformCapacities, FillsVector) {
  const auto caps = uniform_capacities(5, 0.4);
  EXPECT_EQ(caps.size(), 5u);
  for (double c : caps) EXPECT_DOUBLE_EQ(c, 0.4);
  EXPECT_THROW((void)uniform_capacities(3, -0.1), std::invalid_argument);
}

TEST(NonuniformCapacities, EndpointsHitBetaAndGamma) {
  const net::LatencyMatrix m = net::small_synth(12, 3);
  std::vector<std::size_t> support{0, 1, 2, 3, 4, 5};
  const double beta = 0.3, gamma = 0.9;
  const auto caps = nonuniform_capacities(m, support, beta, gamma);
  ASSERT_EQ(caps.size(), m.size());

  // Identify the support site with min / max average distance.
  std::size_t closest = support[0], farthest = support[0];
  for (std::size_t s : support) {
    if (m.average_rtt_from(s) < m.average_rtt_from(closest)) closest = s;
    if (m.average_rtt_from(s) > m.average_rtt_from(farthest)) farthest = s;
  }
  // 1/s largest for the closest site -> gamma; smallest -> beta.
  EXPECT_NEAR(caps[closest], gamma, 1e-12);
  EXPECT_NEAR(caps[farthest], beta, 1e-12);
  for (std::size_t s : support) {
    EXPECT_GE(caps[s], beta - 1e-12);
    EXPECT_LE(caps[s], gamma + 1e-12);
  }
}

TEST(NonuniformCapacities, InverseMonotoneInAverageDistance) {
  const net::LatencyMatrix m = net::small_synth(10, 5);
  std::vector<std::size_t> support{1, 3, 5, 7, 9};
  const auto caps = nonuniform_capacities(m, support, 0.2, 0.8);
  for (std::size_t a : support) {
    for (std::size_t b : support) {
      if (m.average_rtt_from(a) < m.average_rtt_from(b)) {
        EXPECT_GE(caps[a] + 1e-12, caps[b]);
      }
    }
  }
}

TEST(NonuniformCapacities, NonSupportSitesGetGamma) {
  const net::LatencyMatrix m = net::small_synth(6, 7);
  const std::vector<std::size_t> support{0, 1};
  const auto caps = nonuniform_capacities(m, support, 0.1, 0.5);
  for (std::size_t s = 2; s < m.size(); ++s) EXPECT_DOUBLE_EQ(caps[s], 0.5);
}

TEST(NonuniformCapacities, DegenerateIntervalAndEqualDistances) {
  const net::LatencyMatrix m = net::small_synth(6, 7);
  const std::vector<std::size_t> support{0, 1, 2};
  // beta == gamma: every site gets the single value.
  const auto caps = nonuniform_capacities(m, support, 0.4, 0.4);
  for (std::size_t s : support) EXPECT_DOUBLE_EQ(caps[s], 0.4);

  // Perfectly symmetric matrix -> all s_i equal -> all gamma.
  const net::LatencyMatrix symmetric{{{0.0, 2.0, 2.0},  //
                                      {2.0, 0.0, 2.0},
                                      {2.0, 2.0, 0.0}}};
  const auto equal = nonuniform_capacities(symmetric, std::vector<std::size_t>{0, 1, 2},
                                           0.2, 0.7);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_DOUBLE_EQ(equal[s], 0.7);
}

TEST(NonuniformCapacities, RejectsBadInput) {
  const net::LatencyMatrix m = net::small_synth(6, 7);
  const std::vector<std::size_t> support{0, 1};
  EXPECT_THROW((void)nonuniform_capacities(m, {}, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)nonuniform_capacities(m, support, 0.6, 0.5), std::invalid_argument);
  EXPECT_THROW((void)nonuniform_capacities(m, support, -0.1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)nonuniform_capacities(m, support, 0.1, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace qp::core
