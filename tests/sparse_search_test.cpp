// Parity suites for the sparse candidate-search stack: the kd-tree KnnIndex
// against the brute-force reference, the ClientCandidateIndex sparse
// evaluation against the dense full scan (including after move sequences,
// where the evaluator repairs its charge/overflow state incrementally), and
// — the acceptance pin — sparse local search reproducing the dense
// exhaustive scan's local optimum on every n <= 500 config.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/client_index.hpp"
#include "core/delta_eval.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "net/knn_index.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "sim/scenario.hpp"

namespace qp::core {
namespace {

// ------------------------------------------------------------- KnnIndex

TEST(KnnIndex, TreeMatchesBruteForceOnDensifiedEmbedding) {
  // The kd-tree over the embedding and the brute-force scan over its
  // densified matrix must return identical neighbors (site AND rtt bitwise,
  // densify() preserves doubles) for every query site and several k.
  sim::ScenarioConfig config;
  config.site_count = 300;
  const sim::SparseScenario scenario = sim::make_sparse_scenario(config);
  const net::LatencyMatrix dense = scenario.space.densify();
  const net::KnnIndex tree{scenario.space};
  const net::KnnIndex brute{dense};
  ASSERT_EQ(tree.size(), brute.size());
  for (std::size_t from = 0; from < tree.size(); from += 7) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                                tree.size() + 5}) {
      const auto a = tree.nearest(from, k);
      const auto b = brute.nearest(from, k);
      ASSERT_EQ(a.size(), b.size()) << "from=" << from << " k=" << k;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].site, b[i].site) << "from=" << from << " k=" << k << " i=" << i;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].rtt_ms),
                  std::bit_cast<std::uint64_t>(b[i].rtt_ms));
      }
    }
  }
}

TEST(KnnIndex, WithinMatchesBruteForce) {
  sim::ScenarioConfig config;
  config.site_count = 200;
  const sim::SparseScenario scenario = sim::make_sparse_scenario(config);
  const net::LatencyMatrix dense = scenario.space.densify();
  const net::KnnIndex tree{scenario.space};
  const net::KnnIndex brute{dense};
  std::vector<net::KnnIndex::Neighbor> a, b;
  for (std::size_t from = 0; from < tree.size(); from += 11) {
    for (const double radius : {0.0, 20.0, 80.0, 1e9}) {
      tree.within(from, radius, a);
      brute.within(from, radius, b);
      ASSERT_EQ(a.size(), b.size()) << "from=" << from << " r=" << radius;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].site, b[i].site);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].rtt_ms),
                  std::bit_cast<std::uint64_t>(b[i].rtt_ms));
      }
    }
  }
}

// ------------------------------------------- ClientCandidateIndex parity

/// Indexed evaluator vs dense evaluator, candidate-by-candidate.
void expect_candidate_parity(const DeltaEvaluator& indexed, const DeltaEvaluator& dense,
                             std::size_t universe, std::size_t sites,
                             const char* where) {
  for (std::size_t u = 0; u < universe; u += 3) {
    for (std::size_t s = 0; s < sites; s += 5) {
      EXPECT_NEAR(indexed.objective_if_moved(u, s), dense.objective_if_moved(u, s),
                  1e-9 * (1.0 + dense.objective_if_moved(u, s)))
          << where << ": candidate (" << u << " -> " << s << ")";
    }
  }
}

TEST(ClientCandidateIndex, SparseEvaluationStaysExactAcrossMoveSequence) {
  // The uncapped index is built ONCE from the initial m1 radii; after each
  // accepted move the evaluator repairs its charge index and coverage
  // overflow set instead of rebuilding. Pin: the stale-index-plus-repair
  // evaluation equals (a) the dense full scan and (b) an evaluator with an
  // index freshly rebuilt from the current radii — after every move of an
  // improving sequence.
  const sim::Scenario scenario = sim::daxlist161_scenario();
  const quorum::GridQuorum grid{7};
  const ClosestStrategyObjective objective = scenario.closest_objective();
  Placement placement;
  placement.site_of.resize(grid.universe_size());
  for (std::size_t u = 0; u < grid.universe_size(); ++u) placement.site_of[u] = u;

  const net::KnnIndex knn{scenario.matrix};
  DeltaEvaluator dense{scenario.matrix, grid, placement, objective};
  DeltaEvaluator indexed{scenario.matrix, grid, placement, objective};
  const ClientCandidateIndex index = ClientCandidateIndex::build(
      scenario.matrix, &knn, indexed.best_values(), {});
  indexed.attach_candidate_index(&index);

  expect_candidate_parity(indexed, dense, grid.universe_size(), scenario.site_count(),
                          "before any move");

  // A deterministic improving move sequence: repeatedly take the first
  // improving candidate the dense evaluator finds.
  std::size_t moves = 0;
  for (; moves < 8; ++moves) {
    bool accepted = false;
    for (std::size_t u = 0; u < grid.universe_size() && !accepted; ++u) {
      for (std::size_t s = 0; s < scenario.site_count() && !accepted; ++s) {
        if (dense.placement().site_of[u] == s) continue;
        if (dense.objective_if_moved(u, s) < dense.objective() - 1e-9) {
          dense.apply_move(u, s);
          indexed.apply_move(u, s);
          accepted = true;
        }
      }
    }
    if (!accepted) break;

    EXPECT_NEAR(indexed.objective(), dense.objective(), 1e-9 * (1.0 + dense.objective()))
        << "after move " << moves;
    expect_candidate_parity(indexed, dense, grid.universe_size(), scenario.site_count(),
                            "stale index after moves");

    // Fresh rebuild from the *current* radii must agree with the repaired
    // stale-index path too.
    DeltaEvaluator fresh{scenario.matrix, grid, dense.placement(), objective};
    const ClientCandidateIndex rebuilt = ClientCandidateIndex::build(
        scenario.matrix, &knn, fresh.best_values(), {});
    fresh.attach_candidate_index(&rebuilt);
    expect_candidate_parity(indexed, fresh, grid.universe_size(), scenario.site_count(),
                            "fresh rebuild after moves");
  }
  EXPECT_GT(moves, 0u) << "the initial placement was already locally optimal";
}

TEST(ClientCandidateIndex, DirtyReaccumulationMatchesFullBitwise) {
  // apply_move with charge lists maintained re-sums only the sites whose
  // charging multiset changed and reprices only the dirty clients; the pin
  // is BITWISE equality with the detached evaluator's full O(clients x |Q|)
  // reaccumulation after every accepted move, for both the Grid and the
  // Majority closest engines (the load-aware objective arms the load terms).
  const sim::Scenario scenario = sim::daxlist161_scenario();
  const ClosestStrategyObjective objective = scenario.closest_objective();
  const net::KnnIndex knn{scenario.matrix};

  const auto run = [&](const quorum::QuorumSystem& system, const char* name) {
    Placement placement;
    placement.site_of.resize(system.universe_size());
    for (std::size_t u = 0; u < system.universe_size(); ++u) placement.site_of[u] = u;

    DeltaEvaluator full{scenario.matrix, system, placement, objective};
    DeltaEvaluator dirty{scenario.matrix, system, placement, objective};
    const ClientCandidateIndex index =
        ClientCandidateIndex::build(scenario.matrix, &knn, dirty.best_values(), {});
    dirty.attach_candidate_index(&index);

    std::size_t moves = 0;
    for (; moves < 12; ++moves) {
      bool accepted = false;
      for (std::size_t u = 0; u < system.universe_size() && !accepted; ++u) {
        for (std::size_t s = 0; s < scenario.site_count() && !accepted; ++s) {
          if (full.placement().site_of[u] == s) continue;
          if (full.objective_if_moved(u, s) < full.objective() - 1e-9) {
            full.apply_move(u, s);
            dirty.apply_move(u, s);
            accepted = true;
          }
        }
      }
      if (!accepted) break;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(dirty.objective()),
                std::bit_cast<std::uint64_t>(full.objective()))
          << name << ": objective diverged after move " << moves;
    }
    EXPECT_GT(moves, 0u) << name << ": vacuous pin, nothing moved";
  };

  run(quorum::GridQuorum{7}, "Grid(7x7)");
  run(quorum::MajorityQuorum{49, 25}, "Majority(25/49)");
}

// ------------------------------------- Sparse vs dense local-search parity

/// The acceptance pin: parity mode (candidate_knn == 0, uncapped client
/// index) must reproduce the dense exhaustive scan's decisions exactly —
/// same moves, same final placement. Both runs recompute the final
/// objective from the matrix, so equal placements give equal doubles.
void expect_search_parity(const sim::Scenario& scenario, std::size_t max_rounds,
                          std::size_t grid_side = 7) {
  const quorum::GridQuorum grid{grid_side};
  const ClosestStrategyObjective objective = scenario.closest_objective();
  Placement initial;
  initial.site_of.resize(grid.universe_size());
  const std::size_t stride =
      std::max<std::size_t>(1, scenario.site_count() / grid.universe_size());
  for (std::size_t u = 0; u < grid.universe_size(); ++u) {
    initial.site_of[u] = u * stride;
  }

  LocalSearchOptions dense_options;
  dense_options.objective = &objective;
  dense_options.max_rounds = max_rounds;
  dense_options.client_index = false;  // The historical dense full scan.
  dense_options.threads = 1;
  const LocalSearchResult dense =
      local_search_placement(scenario.matrix, grid, initial, dense_options);

  LocalSearchOptions sparse_options = dense_options;
  sparse_options.client_index = true;
  sparse_options.client_index_cap = 0;  // Uncapped = exact parity mode.
  const LocalSearchResult sparse =
      local_search_placement(scenario.matrix, grid, initial, sparse_options);

  EXPECT_GT(dense.moves, 0u) << scenario.name << ": vacuous parity, nothing moved";
  EXPECT_EQ(sparse.moves, dense.moves) << scenario.name;
  ASSERT_EQ(sparse.placement.site_of, dense.placement.site_of) << scenario.name;
  EXPECT_DOUBLE_EQ(sparse.objective, dense.objective) << scenario.name;
}

TEST(SparseSearchParity, N49ReproducesDenseLocalOptimum) {
  // Grid 5x5 on 49 sites: the universe must be smaller than n or there are
  // no unused sites and the neighborhood is empty.
  sim::ScenarioConfig config;
  config.name = "synthetic-49";
  config.site_count = 49;
  expect_search_parity(sim::make_scenario(config), /*max_rounds=*/100, /*grid_side=*/5);
}

TEST(SparseSearchParity, N161ReproducesDenseLocalOptimum) {
  expect_search_parity(sim::daxlist161_scenario(), /*max_rounds=*/100);
}

TEST(SparseSearchParity, N500ReproducesDenseTrajectory) {
  // Full convergence at n = 500 is a benchmark, not a unit test; a bounded
  // round budget pins the same-trajectory property at the largest config.
  expect_search_parity(sim::synthetic500_scenario(), /*max_rounds=*/4);
}

TEST(SparseSearchParity, KnnCandidateListCoveringAllSitesMatchesDense) {
  // candidate_knn >= n enumerates the same targets as the dense scan (in
  // the same ascending-site order), so the whole knn-target path must land
  // on the identical optimum.
  const sim::Scenario scenario = sim::daxlist161_scenario();
  const quorum::GridQuorum grid{7};
  const ClosestStrategyObjective objective = scenario.closest_objective();
  Placement initial;
  initial.site_of.resize(grid.universe_size());
  for (std::size_t u = 0; u < grid.universe_size(); ++u) initial.site_of[u] = u;

  LocalSearchOptions dense_options;
  dense_options.objective = &objective;
  dense_options.client_index = false;
  dense_options.threads = 1;
  const LocalSearchResult dense =
      local_search_placement(scenario.matrix, grid, initial, dense_options);

  const net::KnnIndex knn{scenario.matrix};
  LocalSearchOptions knn_options = dense_options;
  knn_options.client_index = true;
  knn_options.candidate_knn = scenario.site_count();  // k >= n: full list.
  knn_options.knn = &knn;
  const LocalSearchResult sparse =
      local_search_placement(scenario.matrix, grid, initial, knn_options);

  EXPECT_EQ(sparse.moves, dense.moves);
  ASSERT_EQ(sparse.placement.site_of, dense.placement.site_of);
  EXPECT_DOUBLE_EQ(sparse.objective, dense.objective);
}

TEST(SparseSearchParity, CappedIndexStillProducesImprovingSequence) {
  // Capped lists make candidate *ranking* approximate; applies stay exact,
  // so the result must still be a genuine improvement over the start.
  const sim::Scenario scenario = sim::daxlist161_scenario();
  const quorum::GridQuorum grid{7};
  const ClosestStrategyObjective objective = scenario.closest_objective();
  Placement initial;
  initial.site_of.resize(grid.universe_size());
  for (std::size_t u = 0; u < grid.universe_size(); ++u) initial.site_of[u] = u;
  const double initial_objective = objective.evaluate(scenario.matrix, grid, initial);

  LocalSearchOptions options;
  options.objective = &objective;
  options.max_rounds = 10;  // Improvement, not convergence — keep it cheap.
  options.client_index = true;
  options.client_index_cap = 16;
  options.threads = 1;
  const LocalSearchResult result =
      local_search_placement(scenario.matrix, grid, initial, options);
  EXPECT_GT(result.moves, 0u);
  EXPECT_LT(result.objective, initial_objective);
  result.placement.validate(scenario.site_count());
}

}  // namespace
}  // namespace qp::core
