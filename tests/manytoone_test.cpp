#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/capacity.hpp"
#include "core/manytoone.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

std::vector<double> uniform_distribution(std::size_t m) {
  return std::vector<double>(m, 1.0 / static_cast<double>(m));
}

TEST(ManyToOne, ProducesValidPlacement) {
  const LatencyMatrix m = net::small_synth(10, 3);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  const auto caps = uniform_capacities(m.size(), 1.0);
  const ManyToOneResult result = many_to_one_placement(m, grid, probs, caps, 0);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  result.placement.validate(m.size());
  EXPECT_EQ(result.placement.universe_size(), 4u);
}

TEST(ManyToOne, GenerousCapacityCollapsesTowardAnchor) {
  // With cap = |Q| on every site, putting everything on v0 is optimal: the
  // anchor client sees zero delay.
  const LatencyMatrix m = net::small_synth(8, 5);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  const std::vector<double> caps(m.size(), 3.0);  // Total load of Grid(2) is 3.
  const std::size_t v0 = 2;
  const ManyToOneResult result = many_to_one_placement(m, grid, probs, caps, v0);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(result.lp_delay_bound, 0.0, 1e-7);
  for (std::size_t site : result.placement.site_of) EXPECT_EQ(site, v0);
}

TEST(ManyToOne, InfeasibleWhenCapacityTooSmall) {
  const LatencyMatrix m = net::small_synth(6, 7);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  // Total balanced load is 3 but total capacity is 6 * 0.2 = 1.2.
  const auto caps = uniform_capacities(m.size(), 0.2);
  const ManyToOneResult result = many_to_one_placement(m, grid, probs, caps, 0);
  EXPECT_EQ(result.status, lp::SolveStatus::Infeasible);
}

TEST(ManyToOne, CapacityViolationIsBounded) {
  // Shmoys-Tardos: the violation is at most cap + max item size, i.e.
  // load(w)/cap(w) <= 1 + max_u load(u)/cap(w). Check the reported factor.
  const LatencyMatrix m = net::small_synth(12, 11);
  const quorum::GridQuorum grid{3};
  const auto probs = uniform_distribution(9);
  const double cap_level = grid.optimal_load() * 1.3;
  const auto caps = uniform_capacities(m.size(), cap_level);
  const ManyToOneResult result = many_to_one_placement(m, grid, probs, caps, 1);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  const double max_item = 5.0 / 9.0;  // Grid(3) uniform element load (2k-1)/k^2.
  EXPECT_LE(result.max_capacity_violation, 1.0 + max_item / cap_level + 1e-6);
}

TEST(ManyToOne, DelayBoundIsLowerBoundOnRoundedDelay) {
  const LatencyMatrix m = net::small_synth(10, 13);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  const auto caps = uniform_capacities(m.size(), 0.9);
  const std::size_t v0 = 3;
  const ManyToOneResult result = many_to_one_placement(m, grid, probs, caps, v0);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  // The anchor's expected delay of the integral placement is bounded below
  // by the LP optimum (the LP relaxes integrality).
  const auto quorums = grid.enumerate_quorums(100);
  double anchor_delay = 0.0;
  for (std::size_t i = 0; i < quorums.size(); ++i) {
    double worst = 0.0;
    for (std::size_t u : quorums[i]) {
      worst = std::max(worst, m.rtt(v0, result.placement.site_of[u]));
    }
    anchor_delay += probs[i] * worst;
  }
  EXPECT_GE(anchor_delay + 1e-7, result.lp_delay_bound);
}

TEST(ManyToOne, NonUniformDistributionShiftsPlacement) {
  const LatencyMatrix m = net::small_synth(10, 17);
  const quorum::GridQuorum grid{2};
  // Heavily favor quorum (0,0) = elements {0,1,2}: their placement matters most.
  std::vector<double> probs{0.97, 0.01, 0.01, 0.01};
  const auto caps = uniform_capacities(m.size(), 0.8);
  const ManyToOneResult result = many_to_one_placement(m, grid, probs, caps, 0);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  // Elements of the popular quorum sit closer to v0 than the unpopular one.
  const double popular = std::max({m.rtt(0, result.placement.site_of[0]),
                                   m.rtt(0, result.placement.site_of[1]),
                                   m.rtt(0, result.placement.site_of[2])});
  (void)popular;  // The strong assertion is on the LP bound below.
  EXPECT_LE(result.lp_delay_bound,
            average_network_delay_under_distribution(m, grid.enumerate_quorums(100), probs,
                                                     result.placement) +
                1e-6);
}

TEST(ManyToOne, ValidatesArguments) {
  const LatencyMatrix m = net::small_synth(6, 19);
  const quorum::GridQuorum grid{2};
  const auto caps = uniform_capacities(m.size(), 1.0);
  EXPECT_THROW((void)many_to_one_placement(m, grid, uniform_distribution(3), caps, 0),
               std::invalid_argument);  // Wrong distribution size.
  EXPECT_THROW((void)many_to_one_placement(m, grid, std::vector<double>(4, 0.3), caps, 0),
               std::invalid_argument);  // Does not sum to 1.
  EXPECT_THROW(
      (void)many_to_one_placement(m, grid, uniform_distribution(4), caps, 99),
      std::invalid_argument);  // v0 out of range.
  const std::vector<double> short_caps(2, 1.0);
  EXPECT_THROW((void)many_to_one_placement(m, grid, uniform_distribution(4), short_caps, 0),
               std::invalid_argument);
}

TEST(AverageNetworkDelayUnderDistribution, MatchesHandComputation) {
  const LatencyMatrix m{{{0.0, 4.0}, {4.0, 0.0}}};
  const std::vector<quorum::Quorum> quorums{{0}, {1}};
  const std::vector<double> probs{0.5, 0.5};
  const Placement p{{0, 1}};
  // Client 0: 0.5*0 + 0.5*4 = 2; client 1: 0.5*4 + 0.5*0 = 2.
  EXPECT_DOUBLE_EQ(average_network_delay_under_distribution(m, quorums, probs, p), 2.0);
}

TEST(BestManyToOne, BeatsOrMatchesSingleAnchor) {
  const LatencyMatrix m = net::small_synth(10, 23);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  const auto caps = uniform_capacities(m.size(), 0.9);
  const ManyToOneSearchResult best = best_many_to_one_placement(m, grid, probs, caps);
  ASSERT_EQ(best.best.status, lp::SolveStatus::Optimal);
  const auto quorums = grid.enumerate_quorums(100);
  for (std::size_t v0 = 0; v0 < m.size(); ++v0) {
    const ManyToOneResult single = many_to_one_placement(m, grid, probs, caps, v0);
    ASSERT_EQ(single.status, lp::SolveStatus::Optimal);
    const double delay =
        average_network_delay_under_distribution(m, quorums, probs, single.placement);
    EXPECT_GE(delay + 1e-9, best.avg_network_delay);
  }
}

TEST(BestManyToOne, ManyToOneBeatsOneToOneOnNetworkDelay) {
  // §8: "using many-to-one placements ... network delay will necessarily
  // decrease" relative to one-to-one (quorums collapse onto fewer sites).
  const LatencyMatrix m = net::small_synth(12, 29);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  const auto caps = uniform_capacities(m.size(), 1.0);
  const ManyToOneSearchResult many = best_many_to_one_placement(m, grid, probs, caps);
  ASSERT_EQ(many.best.status, lp::SolveStatus::Optimal);
  const PlacementSearchResult one = best_grid_placement(m, 2);
  EXPECT_LE(many.avg_network_delay, one.avg_network_delay + 1e-9);
}

TEST(BestManyToOne, InfeasibleReported) {
  const LatencyMatrix m = net::small_synth(6, 31);
  const quorum::GridQuorum grid{2};
  const auto probs = uniform_distribution(4);
  const auto caps = uniform_capacities(m.size(), 0.01);
  const ManyToOneSearchResult best = best_many_to_one_placement(m, grid, probs, caps);
  EXPECT_EQ(best.best.status, lp::SolveStatus::Infeasible);
}

}  // namespace
}  // namespace qp::core
