#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

// ------------------------------------------------------- ExplicitStrategy

TEST(ExplicitStrategy, ValidationAcceptsProperDistribution) {
  ExplicitStrategy s;
  s.quorums = {{0, 1}, {1, 2}};
  s.probability = {{0.25, 0.75}, {1.0, 0.0}};
  EXPECT_NO_THROW(s.validate(2, 3));
}

TEST(ExplicitStrategy, ValidationRejectsBadShapes) {
  ExplicitStrategy s;
  s.quorums = {{0, 1}};
  s.probability = {{1.0}};
  EXPECT_THROW(s.validate(2, 2), std::invalid_argument);  // Wrong client count.
  s.probability = {{0.5}, {1.0}};
  EXPECT_THROW(s.validate(2, 2), std::invalid_argument);  // Row sums to 0.5.
  s.probability = {{1.0}, {1.0}};
  EXPECT_NO_THROW(s.validate(2, 2));
  s.quorums = {{0, 5}};
  EXPECT_THROW(s.validate(2, 2), std::out_of_range);  // Element out of range.
  s.quorums = {{}};
  EXPECT_THROW(s.validate(2, 2), std::invalid_argument);  // Empty quorum.
}

TEST(ExplicitStrategy, AverageDistribution) {
  ExplicitStrategy s;
  s.quorums = {{0}, {1}};
  s.probability = {{1.0, 0.0}, {0.0, 1.0}};
  const auto avg = s.average_distribution();
  EXPECT_DOUBLE_EQ(avg[0], 0.5);
  EXPECT_DOUBLE_EQ(avg[1], 0.5);
}

// ------------------------------------------------------------ Element load

TEST(ElementLoads, SumsQuorumProbabilities) {
  const std::vector<quorum::Quorum> quorums{{0, 1}, {1, 2}};
  const std::vector<double> distribution{0.3, 0.7};
  const auto loads = element_loads(quorums, distribution, 3);
  EXPECT_DOUBLE_EQ(loads[0], 0.3);
  EXPECT_DOUBLE_EQ(loads[1], 1.0);
  EXPECT_DOUBLE_EQ(loads[2], 0.7);
}

TEST(ElementLoads, ErrorsOnMismatch) {
  EXPECT_THROW((void)element_loads(std::vector<quorum::Quorum>{{0}},
                                   std::vector<double>{0.5, 0.5}, 1),
               std::invalid_argument);
  EXPECT_THROW((void)element_loads(std::vector<quorum::Quorum>{{3}},
                                   std::vector<double>{1.0}, 2),
               std::out_of_range);
}

// -------------------------------------------------------------- Site loads

TEST(SiteLoads, BalancedMatchesUniformLoadTimesPlacement) {
  const quorum::GridQuorum grid{2};
  // Two elements share site 1; the others live alone.
  const Placement p{{1, 1, 0, 2}};
  const auto loads = site_loads_balanced(grid, p, 4);
  const double per_element = grid.uniform_load()[0];
  EXPECT_DOUBLE_EQ(loads[1], 2 * per_element);
  EXPECT_DOUBLE_EQ(loads[0], per_element);
  EXPECT_DOUBLE_EQ(loads[2], per_element);
  EXPECT_DOUBLE_EQ(loads[3], 0.0);
}

TEST(SiteLoads, TotalLoadConservation) {
  // Total load always equals the average quorum size (sum over elements of
  // load(u) = E[|Q|]), independent of strategy.
  const LatencyMatrix m = net::small_synth(9, 17);
  const quorum::GridQuorum grid{2};
  const Placement p = grid_placement_for_client(m, 2, 0);
  const double quorum_size = 3.0;  // 2k-1 for k=2.

  const auto balanced = site_loads_balanced(grid, p, m.size());
  double total = 0.0;
  for (double load : balanced) total += load;
  EXPECT_NEAR(total, quorum_size, 1e-12);

  const auto closest = site_loads_closest(m, grid, p);
  total = 0.0;
  for (double load : closest) total += load;
  EXPECT_NEAR(total, quorum_size, 1e-12);
}

TEST(SiteLoads, ClosestConcentratesOnPopularQuorum) {
  const LatencyMatrix m = net::small_synth(16, 3);
  const quorum::GridQuorum grid{3};
  const PlacementSearchResult best = best_grid_placement(m, 3);
  const auto closest = site_loads_closest(m, grid, best.placement);
  const auto balanced = site_loads_balanced(grid, best.placement, m.size());
  // Closest routing produces a strictly higher maximum load than balanced.
  EXPECT_GT(*std::max_element(closest.begin(), closest.end()),
            *std::max_element(balanced.begin(), balanced.end()) - 1e-12);
}

TEST(SiteLoads, ExplicitMatchesHandComputation) {
  ExplicitStrategy s;
  s.quorums = {{0, 1}, {1}};
  s.probability = {{1.0, 0.0}, {0.0, 1.0}};  // Client 0 -> Q0, client 1 -> Q1.
  const Placement p{{0, 1}};
  const auto loads = site_loads_explicit(s, p, 3);
  // Element 0: only Q0 via client 0 -> avg load 0.5. Element 1: both clients -> 1.0.
  EXPECT_DOUBLE_EQ(loads[0], 0.5);
  EXPECT_DOUBLE_EQ(loads[1], 1.0);
  EXPECT_DOUBLE_EQ(loads[2], 0.0);
}

// ---------------------------------------------------------- Closest quorums

TEST(ClosestQuorums, EachClientGetsItsOwnBest) {
  const LatencyMatrix m = net::small_synth(10, 23);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  const auto chosen = closest_quorums(m, grid, p);
  ASSERT_EQ(chosen.size(), m.size());
  for (std::size_t v = 0; v < m.size(); ++v) {
    const auto values = element_distances(m, p, v);
    double chosen_max = 0.0;
    for (std::size_t u : chosen[v]) chosen_max = std::max(chosen_max, values[u]);
    for (const auto& quorum : grid.enumerate_quorums(100)) {
      double other = 0.0;
      for (std::size_t u : quorum) other = std::max(other, values[u]);
      EXPECT_GE(other + 1e-12, chosen_max);
    }
  }
}

// ------------------------------------------------------------- Strategy LP

TEST(StrategyLp, UncapacitatedRecoversClosest) {
  // With capacity 1.0 everywhere the LP is free to send every client to its
  // closest quorum; objective must equal the closest strategy's delay.
  const LatencyMatrix m = net::small_synth(12, 31);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  const auto caps = uniform_capacities(m.size(), 1.0);
  const StrategyLpResult lp = optimize_access_strategy(m, grid, p, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);

  double closest_total = 0.0;
  for (std::size_t v = 0; v < m.size(); ++v) {
    const auto values = element_distances(m, p, v);
    double best = 1e300;
    for (const auto& quorum : grid.enumerate_quorums(100)) {
      double worst = 0.0;
      for (std::size_t u : quorum) worst = std::max(worst, values[u]);
      best = std::min(best, worst);
    }
    closest_total += best;
  }
  EXPECT_NEAR(lp.avg_network_delay, closest_total / static_cast<double>(m.size()), 1e-6);
}

TEST(StrategyLp, RespectsCapacities) {
  const LatencyMatrix m = net::small_synth(12, 37);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  const double cap_level = grid.optimal_load() * 1.1;
  const auto caps = uniform_capacities(m.size(), cap_level);
  const StrategyLpResult lp = optimize_access_strategy(m, grid, p, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  lp.strategy.validate(m.size(), grid.universe_size());
  const auto loads = site_loads_explicit(lp.strategy, p, m.size());
  for (double load : loads) EXPECT_LE(load, cap_level + 1e-6);
}

TEST(StrategyLp, InfeasibleWhenCapacityBelowOptimalLoad) {
  const LatencyMatrix m = net::small_synth(9, 41);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  // Total element load is always >= |Q|; with per-site caps far below
  // L_opt the workload cannot fit.
  const auto caps = uniform_capacities(m.size(), grid.optimal_load() * 0.5);
  const StrategyLpResult lp = optimize_access_strategy(m, grid, p, caps);
  EXPECT_EQ(lp.status, lp::SolveStatus::Infeasible);
}

TEST(StrategyLp, TighterCapacityNeverImprovesDelay) {
  const LatencyMatrix m = net::small_synth(12, 43);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  // Grid(2) carries total load 3 over 4 support sites, so anything >= 0.75
  // per site is feasible.
  double previous = -1.0;
  for (double cap : {1.0, 0.9, 0.8, 0.76}) {
    const StrategyLpResult lp =
        optimize_access_strategy(m, grid, p, uniform_capacities(m.size(), cap));
    ASSERT_EQ(lp.status, lp::SolveStatus::Optimal) << "cap=" << cap;
    EXPECT_GE(lp.avg_network_delay + 1e-7, previous) << "cap=" << cap;
    previous = lp.avg_network_delay;
  }
}

TEST(StrategyLp, MajorityViaEnumeration) {
  // Small majority systems are enumerable, so the LP works for them too.
  const LatencyMatrix m = net::small_synth(8, 47);
  const quorum::MajorityQuorum majority{5, 3};
  const Placement p = best_majority_placement(m, majority).placement;
  const auto caps = uniform_capacities(m.size(), 0.8);
  const StrategyLpResult lp = optimize_access_strategy(m, majority, p, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  lp.strategy.validate(m.size(), 5);
  const auto loads = site_loads_explicit(lp.strategy, p, m.size());
  for (double load : loads) EXPECT_LE(load, 0.8 + 1e-6);
}

TEST(StrategyLp, ErrorsOnBadInput) {
  const LatencyMatrix m = net::small_synth(6, 53);
  const quorum::GridQuorum grid{2};
  const Placement p = best_grid_placement(m, 2).placement;
  const std::vector<double> short_caps(2, 1.0);
  EXPECT_THROW((void)optimize_access_strategy(m, grid, p, short_caps),
               std::invalid_argument);
  const std::vector<double> short_weights(2, 0.5);
  const auto caps = uniform_capacities(m.size(), 1.0);
  EXPECT_THROW((void)optimize_access_strategy(m, grid, p, caps, short_weights),
               std::invalid_argument);
  std::vector<double> bad_weights(m.size(), 1.0 / static_cast<double>(m.size()));
  bad_weights[1] = -0.1;
  EXPECT_THROW((void)optimize_access_strategy(m, grid, p, caps, bad_weights),
               std::invalid_argument);
}

// --------------------------------------------------- demand-weighted LP

TEST(StrategyLp, UniformWeightsPinTheUnweightedLpBitwise) {
  // Explicit uniform demand shares must reproduce the 1/|V| LP exactly —
  // same coefficients, same simplex path, bitwise-equal output.
  const LatencyMatrix m = net::small_synth(12, 37);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  const auto caps = uniform_capacities(m.size(), grid.optimal_load() * 1.1);
  const StrategyLpResult unweighted = optimize_access_strategy(m, grid, p, caps);
  const std::vector<double> uniform(m.size(), 1.0 / static_cast<double>(m.size()));
  const StrategyLpResult weighted = optimize_access_strategy(m, grid, p, caps, uniform);
  ASSERT_EQ(unweighted.status, lp::SolveStatus::Optimal);
  ASSERT_EQ(weighted.status, lp::SolveStatus::Optimal);
  EXPECT_EQ(weighted.avg_network_delay, unweighted.avg_network_delay);
  EXPECT_EQ(weighted.lp_iterations, unweighted.lp_iterations);
  ASSERT_EQ(weighted.strategy.probability.size(), unweighted.strategy.probability.size());
  for (std::size_t v = 0; v < m.size(); ++v) {
    EXPECT_EQ(weighted.strategy.probability[v], unweighted.strategy.probability[v]);
  }
}

TEST(StrategyLp, DemandWeightsEnterTheCapacityRows) {
  // One hot client carrying half the demand: the weighted LP must keep the
  // *demand-weighted* load under the caps, which forces it to spread the
  // hot client's accesses where the uniform LP did not have to.
  const LatencyMatrix m = net::small_synth(12, 37);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  const double cap_level = grid.optimal_load() * 1.1;
  const auto caps = uniform_capacities(m.size(), cap_level);
  std::vector<double> weights(m.size(), 0.5 / static_cast<double>(m.size() - 1));
  weights[0] = 0.5;
  const StrategyLpResult lp = optimize_access_strategy(m, grid, p, caps, weights);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  lp.strategy.validate(m.size(), grid.universe_size());
  const auto loads = site_loads_explicit(lp.strategy, p, m.size(), weights);
  for (double load : loads) EXPECT_LE(load, cap_level + 1e-6);
  // The LP objective is the demand-weighted average delay of the strategy.
  double expected = 0.0;
  for (std::size_t v = 0; v < m.size(); ++v) {
    const auto values = element_distances(m, p, v);
    for (std::size_t i = 0; i < lp.strategy.quorums.size(); ++i) {
      double worst = 0.0;
      for (std::size_t u : lp.strategy.quorums[i]) worst = std::max(worst, values[u]);
      expected += weights[v] * lp.strategy.probability[v][i] * worst;
    }
  }
  EXPECT_NEAR(lp.avg_network_delay, expected, 1e-6);
  // And it genuinely differs from the uniform solution under these caps.
  const StrategyLpResult uniform = optimize_access_strategy(m, grid, p, caps);
  ASSERT_EQ(uniform.status, lp::SolveStatus::Optimal);
  EXPECT_NE(lp.avg_network_delay, uniform.avg_network_delay);
}

TEST(StrategyLp, UniformLpOverloadsCapacityUnderSkewTheWeightedLpFixes) {
  // The point of the demand-weighted capacity rows: a strategy the 1/|V| LP
  // certifies as feasible can overload sites once one client carries most
  // of the demand (its closest-quorum concentration now weighs its share,
  // not 1/|V|), while the weighted LP keeps the true weighted load legal.
  const LatencyMatrix m = net::small_synth(12, 43);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  const double cap_level = grid.optimal_load() * 1.05;
  const auto caps = uniform_capacities(m.size(), cap_level);
  std::vector<double> weights(m.size(), 0.3 / static_cast<double>(m.size() - 1));
  weights[0] = 0.7;
  const StrategyLpResult uniform = optimize_access_strategy(m, grid, p, caps);
  const StrategyLpResult skewed = optimize_access_strategy(m, grid, p, caps, weights);
  ASSERT_EQ(uniform.status, lp::SolveStatus::Optimal);
  ASSERT_EQ(skewed.status, lp::SolveStatus::Optimal);

  const auto max_load = [&](const StrategyLpResult& lp) {
    const auto loads = site_loads_explicit(lp.strategy, p, m.size(), weights);
    return *std::max_element(loads.begin(), loads.end());
  };
  EXPECT_GT(max_load(uniform), cap_level + 1e-6);   // Overloaded under skew.
  EXPECT_LE(max_load(skewed), cap_level + 1e-6);    // Weighted LP stays legal.
}

}  // namespace
}  // namespace qp::core
