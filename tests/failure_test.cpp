// Failure-injection tests for the protocol simulator: server outages drop
// messages, clients time out and retry on fresh quorums, and the system
// keeps serving thanks to the quorum intersection property.
#include <gtest/gtest.h>

#include <vector>

#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "sim/client_sites.hpp"
#include "sim/protocol_sim.hpp"

namespace qp::sim {
namespace {

struct Fixture {
  net::LatencyMatrix matrix = net::small_synth(14, 77);
  quorum::MajorityQuorum system{5, 3};
  core::Placement placement = core::best_majority_placement(matrix, system).placement;
  std::vector<std::size_t> clients =
      representative_client_sites(matrix, system, placement, 4);
};

ProtocolSimConfig base_config() {
  ProtocolSimConfig config;
  config.duration_ms = 4000.0;
  config.warmup_ms = 500.0;
  config.seed = 5;
  config.request_timeout_ms = 600.0;
  return config;
}

TEST(FailureInjection, NoOutagesMeansNoRetriesOrDrops) {
  const Fixture f;
  const auto result =
      run_protocol_sim(f.matrix, f.system, f.placement, f.clients, base_config());
  EXPECT_EQ(result.failed_requests, 0u);
  EXPECT_EQ(result.total_retries, 0u);
  EXPECT_EQ(result.dropped_messages, 0u);
  EXPECT_GT(result.completed_requests, 0u);
}

TEST(FailureInjection, OutageDropsMessagesAndTriggersRetries) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  // Take one server site down for a chunk of the measured window.
  const std::size_t victim = f.placement.site_of[0];
  config.outages = {{victim, 1000.0, 2500.0}};
  const auto result = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_GT(result.dropped_messages, 0u);
  EXPECT_GT(result.total_retries, 0u);
  // Quorum intersection lets retries route around the dead server: the
  // system keeps completing requests.
  EXPECT_GT(result.completed_requests, 50u);
}

TEST(FailureInjection, OutageInflatesTailResponseTime) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  const auto healthy =
      run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  config.outages = {{f.placement.site_of[0], 1000.0, 2500.0}};
  const auto degraded =
      run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  // Timeouts (600 ms) dominate the affected requests' latency.
  EXPECT_GT(degraded.response_stats.max(), healthy.response_stats.max());
  EXPECT_GT(degraded.avg_response_ms, healthy.avg_response_ms);
}

TEST(FailureInjection, TotalOutageExhaustsAttempts) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  config.max_attempts = 2;
  // Majority(3/5) requires 3 of 5 servers; kill 3 for the entire run.
  config.outages = {{f.placement.site_of[0], 0.0, 10'000.0},
                    {f.placement.site_of[1], 0.0, 10'000.0},
                    {f.placement.site_of[2], 0.0, 10'000.0}};
  const auto result = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  // Every quorum intersects the dead set, so nothing can complete.
  EXPECT_EQ(result.completed_requests, 0u);
  EXPECT_GT(result.failed_requests, 0u);
}

TEST(FailureInjection, MinorityOutageOfTwoServersStillServes) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  // 2 of 5 down for the whole run: only 1 of the 10 possible quorums is
  // fully alive, so blind uniform retries need many attempts (expected 10)
  // before hitting it. Give them room: short timeout, long window, more
  // clients, generous attempt budget.
  config.duration_ms = 12'000.0;
  config.request_timeout_ms = 250.0;
  config.clients_per_site = 3;
  config.max_attempts = 60;
  config.outages = {{f.placement.site_of[0], 0.0, 60'000.0},
                    {f.placement.site_of[1], 0.0, 60'000.0}};
  const auto result = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_GT(result.completed_requests, 0u);
  EXPECT_GT(result.total_retries, result.completed_requests);
}

TEST(FailureInjection, RecoveryRestoresThroughput) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  config.duration_ms = 6000.0;
  // Outage confined to the warmup: the measured window sees a healthy system.
  config.outages = {{f.placement.site_of[0], 0.0, 400.0}};
  const auto early_outage =
      run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  ProtocolSimConfig clean = config;
  clean.outages.clear();
  const auto healthy = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, clean);
  EXPECT_NEAR(early_outage.avg_response_ms, healthy.avg_response_ms,
              0.25 * healthy.avg_response_ms);
}

TEST(FailureInjection, ConfigValidation) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  config.request_timeout_ms = 0.0;
  config.outages = {{0, 1.0, 2.0}};
  EXPECT_THROW((void)run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config),
               std::invalid_argument);
  config = base_config();
  config.outages = {{999, 1.0, 2.0}};
  EXPECT_THROW((void)run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config),
               std::out_of_range);
  config = base_config();
  config.outages = {{0, 5.0, 5.0}};  // Empty window.
  EXPECT_THROW((void)run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config),
               std::invalid_argument);
  config = base_config();
  config.max_attempts = 0;
  EXPECT_THROW((void)run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config),
               std::invalid_argument);
}

TEST(FailureInjection, StaleTimeoutAfterCompletionDoesNotRetry) {
  // Regression: a timeout event firing after its request already completed
  // (or moved on) must be discarded, not counted as a retry. With the
  // timeout set beyond the slowest observed response, a healthy run must be
  // bitwise identical to a run with timeouts effectively disabled — the old
  // accounting resurrected the last pre-drain request of every client when
  // its stale timeout fired after the issue window closed.
  const Fixture f;
  ProtocolSimConfig relaxed = base_config();
  relaxed.request_timeout_ms = 60'000.0;  // Never fires before completion.
  const auto baseline =
      run_protocol_sim(f.matrix, f.system, f.placement, f.clients, relaxed);
  ASSERT_EQ(baseline.total_retries, 0u);
  ASSERT_EQ(baseline.failed_requests, 0u);

  ProtocolSimConfig timed = base_config();
  // Tight but safe: above every completed response of the baseline, so a
  // correct simulator never times out — yet every completion leaves a
  // pending timeout event behind to tempt the stale-event accounting.
  timed.request_timeout_ms = baseline.response_stats.max() * 2.0 + 1.0;
  const auto result =
      run_protocol_sim(f.matrix, f.system, f.placement, f.clients, timed);
  EXPECT_EQ(result.total_retries, 0u);
  EXPECT_EQ(result.failed_requests, 0u);
  EXPECT_EQ(result.completed_requests, baseline.completed_requests);
  EXPECT_DOUBLE_EQ(result.avg_response_ms, baseline.avg_response_ms);
}

TEST(FailureInjection, DeterministicUnderFailures) {
  const Fixture f;
  ProtocolSimConfig config = base_config();
  config.outages = {{f.placement.site_of[1], 800.0, 2000.0}};
  const auto a = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  const auto b = run_protocol_sim(f.matrix, f.system, f.placement, f.clients, config);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
}

}  // namespace
}  // namespace qp::sim
