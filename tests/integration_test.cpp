// Cross-module integration tests: run shrunken versions of the paper's
// experiments end-to-end and assert the qualitative shapes §6-§8 report.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "eval/figures.hpp"
#include "eval/sweeps.hpp"
#include "net/synthetic.hpp"

namespace qp::eval {
namespace {

const net::LatencyMatrix& topo16() {
  static const net::LatencyMatrix m = net::small_synth(16, 1006);
  return m;
}

// ------------------------------------------------------------- Fig 6.3 shape

TEST(Integration, LowDemandSweepCoversAllSystems) {
  const auto points = low_demand_sweep(topo16());
  std::map<std::string, int> rows;
  for (const auto& p : points) rows[p.system] += 1;
  EXPECT_EQ(rows["Singleton"], 1);
  EXPECT_GE(rows["Grid"], 2);           // k = 2..4 on 16 sites.
  EXPECT_GE(rows["(t+1,2t+1) Maj"], 3);
  EXPECT_GE(rows["(2t+1,3t+1) Maj"], 3);
  EXPECT_GE(rows["(4t+1,5t+1) Maj"], 2);
}

TEST(Integration, SingletonBestAndSmallQuorumsBeatLarge) {
  const auto points = low_demand_sweep(topo16());
  double singleton = 0.0;
  std::map<std::string, std::map<std::size_t, double>> series;
  for (const auto& p : points) {
    if (p.system == "Singleton") {
      singleton = p.response_ms;
    } else {
      series[p.system][p.universe] = p.response_ms;
    }
  }
  // The singleton is at least as good as every quorum system (Lin's bound is
  // about placements; the closest strategy at alpha=0 can only be worse than
  // the single best node).
  for (const auto& [system, by_universe] : series) {
    for (const auto& [universe, response] : by_universe) {
      EXPECT_GE(response + 1e-9, singleton)
          << system << " universe=" << universe;
    }
  }
  // At comparable universe sizes, the small-quorum (t+1,2t+1) majority beats
  // the large-quorum (4t+1,5t+1) majority (Fig 6.3's ordering).
  const auto& small_maj = series["(t+1,2t+1) Maj"];
  const auto& large_maj = series["(4t+1,5t+1) Maj"];
  ASSERT_FALSE(small_maj.empty());
  ASSERT_FALSE(large_maj.empty());
  // Compare at the closest universe sizes available: 11 vs 11 (t=5 / t=2).
  if (small_maj.count(11) && large_maj.count(11)) {
    EXPECT_LE(small_maj.at(11), large_maj.at(11) + 1e-9);
  }
  // Response grows with universe size within each majority family.
  for (const auto& [system, by_universe] : series) {
    if (by_universe.size() < 2 || system == "Grid") continue;
    EXPECT_LT(by_universe.begin()->second, std::prev(by_universe.end())->second + 15.0)
        << system;
  }
}

// --------------------------------------------------------- Fig 6.4/6.5 shape

TEST(Integration, BalancedWinsAtHighDemandClosestAtLowDemand) {
  const std::vector<double> demands{100.0, 16'000.0};
  const auto points = grid_demand_sweep(topo16(), demands, 3);
  std::map<std::pair<double, std::string>, std::map<std::size_t, double>> response;
  for (const auto& p : points) {
    response[{p.client_demand, p.strategy}][p.universe] = p.response_ms;
  }
  // Low demand: closest no worse than balanced for every universe size.
  auto low_closest = response[{100.0, "closest"}];
  auto low_balanced = response[{100.0, "balanced"}];
  for (const auto& [universe, r] : low_closest) {
    EXPECT_LE(r, low_balanced[universe] + 1e-9) << universe;
  }
  // High demand: balanced wins at the smallest universe size, where closest
  // concentrates all load on 3 nodes.
  const double high_balanced_4 = response[{16'000.0, "balanced"}][4];
  const double high_closest_4 = response[{16'000.0, "closest"}][4];
  EXPECT_LT(high_balanced_4, high_closest_4);
}

TEST(Integration, BalancedLoadComponentShrinksWithUniverseAtHighDemand) {
  // Fig 6.5's mechanism: under demand = 16000 the balanced strategy's LOAD
  // component (response - network delay) shrinks as the universe grows,
  // while the network-delay component increases. (The full "response
  // decreases" crossover needs the 161-site topology's dispersion headroom;
  // the fig6_5 bench checks that on daxlist-161.)
  const std::vector<double> demands{16'000.0};
  const auto points = grid_demand_sweep(topo16(), demands, 4);
  std::map<std::size_t, double> load_component, network;
  for (const auto& p : points) {
    if (p.strategy != "balanced") continue;
    load_component[p.universe] = p.response_ms - p.network_delay_ms;
    network[p.universe] = p.network_delay_ms;
  }
  ASSERT_GE(load_component.size(), 2u);
  EXPECT_GT(load_component.begin()->second, std::prev(load_component.end())->second);
  EXPECT_LT(network.begin()->second, std::prev(network.end())->second);
}

// --------------------------------------------------------- Fig 7.6/7.7 shape

TEST(Integration, CapacitySweepTradesDelayForLoad) {
  CapacitySweepConfig config;
  config.min_side = 3;
  config.max_side = 3;
  config.levels = 5;
  config.client_demand = 16'000.0;
  const auto points = capacity_sweep(topo16(), config);
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) ASSERT_TRUE(p.feasible);
  // Network delay is non-increasing in capacity (more freedom to go close);
  // at this demand the response is higher at the loosest capacity than the
  // tightest (hot nodes dominate).
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].network_delay_ms, points[i - 1].network_delay_ms + 1e-6);
  }
  EXPECT_GT(points.back().response_ms, points.front().response_ms - 1e-9);
}

TEST(Integration, NonuniformCapacitiesHelpAtLooseCapacity) {
  CapacitySweepConfig config;
  config.min_side = 3;
  config.max_side = 3;
  config.levels = 5;
  config.client_demand = 16'000.0;
  config.include_nonuniform = true;
  const auto points = capacity_sweep(topo16(), config);
  // Pair uniform/non-uniform rows at each level.
  std::map<double, std::pair<double, double>> by_level;  // level -> (uni, non).
  for (const auto& p : points) {
    ASSERT_TRUE(p.feasible);
    if (p.nonuniform) {
      by_level[p.capacity_level].second = p.response_ms;
    } else {
      by_level[p.capacity_level].first = p.response_ms;
    }
  }
  // Fig 7.7: at the loosest capacity the non-uniform heuristic is at least
  // as good as uniform; at the tightest the two are nearly identical.
  const auto& tightest = by_level.begin()->second;
  EXPECT_NEAR(tightest.first, tightest.second, 0.35 * tightest.first);
  const auto& loosest = std::prev(by_level.end())->second;
  EXPECT_LE(loosest.second, loosest.first + 1e-6);
}

// ------------------------------------------------------------- Fig 8.9 shape

TEST(Integration, IterativeSweepShapes) {
  IterativeSweepConfig config;
  config.side = 2;
  config.levels = 3;
  config.anchor_count = 6;
  const auto points = iterative_sweep(topo16(), config);

  const auto one_to_one = rows_for_stage(points, "one-to-one");
  const auto phase1 = rows_for_stage(points, "iter1-phase1");
  const auto phase2 = rows_for_stage(points, "iter1-phase2");
  ASSERT_EQ(one_to_one.size(), 3u);
  ASSERT_EQ(phase1.size(), 3u);
  ASSERT_EQ(phase2.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // Many-to-one beats one-to-one on network delay; phase 2 never hurts.
    EXPECT_LE(phase1[i].network_delay_ms, one_to_one[i].network_delay_ms + 1e-6);
    EXPECT_LE(phase2[i].network_delay_ms, phase1[i].network_delay_ms + 1e-6);
  }
}

// ----------------------------------------------------------------- Fig 3.x

TEST(Integration, QuSimulationShapes) {
  QuSweepConfig config;
  config.t_values = {1, 2};
  config.client_counts = {4, 40};
  config.client_site_count = 4;
  config.duration_ms = 3000.0;
  config.warmup_ms = 300.0;
  const auto points = qu_response_surface(topo16(), config);
  ASSERT_EQ(points.size(), 4u);

  std::map<std::pair<std::size_t, std::size_t>, QuPoint> by_key;
  for (const auto& p : points) by_key[{p.t, p.clients}] = p;

  const QuPoint t1_light = by_key[{1, 4}];
  const QuPoint t1_heavy = by_key[{1, 40}];
  const QuPoint t2_light = by_key[{2, 4}];
  // Response grows with client count at fixed t (Fig 3.2b).
  EXPECT_GT(t1_heavy.response_ms, t1_light.response_ms);
  // Network delay grows with t at fixed clients (Fig 3.2a) — bigger quorums
  // reach farther.
  EXPECT_GT(t2_light.network_delay_ms, t1_light.network_delay_ms);
  // Response is bounded below by network delay everywhere.
  for (const auto& p : points) EXPECT_GE(p.response_ms, p.network_delay_ms);
}

// ------------------------------------------------------------------ CSV IO

TEST(Integration, CsvPrintersProduceHeadersAndRows) {
  std::ostringstream out;
  print_csv(out, std::vector<LowDemandPoint>{{"Grid", 4, 10.0}});
  EXPECT_EQ(out.str(), "system,universe,response_ms\nGrid,4,10\n");

  std::ostringstream out2;
  print_csv(out2, std::vector<IterativePoint>{{0.5, "one-to-one", 42.0, 43.0}});
  EXPECT_NE(out2.str().find("one-to-one"), std::string::npos);
}

}  // namespace
}  // namespace qp::eval
