// sim/scenario: seeded synthetic topologies + power-law demand, and the
// large-topology figure driver built on them.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "eval/figures.hpp"
#include "sim/scenario.hpp"

namespace qp::sim {
namespace {

TEST(Scenario, DeterministicInTheSeed) {
  ScenarioConfig config;
  config.site_count = 40;
  config.seed = 77;
  const Scenario a = make_scenario(config);
  const Scenario b = make_scenario(config);
  ASSERT_EQ(a.site_count(), 40u);
  ASSERT_EQ(b.site_count(), 40u);
  for (std::size_t i = 0; i < a.site_count(); ++i) {
    for (std::size_t j = 0; j < a.site_count(); ++j) {
      EXPECT_EQ(a.matrix.rtt(i, j), b.matrix.rtt(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(a.client_demand, b.client_demand);

  config.seed = 78;
  const Scenario c = make_scenario(config);
  EXPECT_NE(a.client_demand, c.client_demand);
}

TEST(Scenario, MatrixIsAMetricWithNamedSites) {
  ScenarioConfig config;
  config.site_count = 35;
  const Scenario scenario = make_scenario(config);
  EXPECT_TRUE(scenario.matrix.satisfies_triangle_inequality(1e-6));
  EXPECT_EQ(scenario.sites.size(), scenario.site_count());
}

TEST(Scenario, ApportionsEverySiteAcrossRegions) {
  for (std::size_t count : {1u, 7u, 13u, 100u, 500u}) {
    ScenarioConfig config;
    config.site_count = count;
    const Scenario scenario = make_scenario(config);
    EXPECT_EQ(scenario.site_count(), count);
    EXPECT_EQ(scenario.client_demand.size(), count);
  }
}

TEST(Scenario, PowerLawDemandIsHeavyTailedWithTheRequestedMean) {
  ScenarioConfig config;
  config.site_count = 400;
  config.mean_demand = 5'000.0;
  const Scenario scenario = make_scenario(config);
  for (double d : scenario.client_demand) EXPECT_GT(d, 0.0);
  EXPECT_NEAR(scenario.mean_demand(), 5'000.0, 1e-6);
  // Heavy tail: the busiest client far exceeds the mean, and the top decile
  // carries a disproportionate share of the total demand.
  std::vector<double> sorted = scenario.client_demand;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back(), 4.0 * scenario.mean_demand());
  const double top_decile = std::accumulate(sorted.end() - 40, sorted.end(), 0.0);
  EXPECT_GT(top_decile / scenario.total_demand(), 0.25);
}

TEST(Scenario, AlphaFollowsTheResponseModel) {
  ScenarioConfig config;
  config.site_count = 10;
  config.mean_demand = 16'000.0;
  const Scenario scenario = make_scenario(config);
  EXPECT_NEAR(scenario.alpha(), 0.007 * 16'000.0, 1e-6);
}

TEST(Scenario, RejectsBadConfigs) {
  ScenarioConfig config;
  config.site_count = 0;
  EXPECT_THROW((void)make_scenario(config), std::invalid_argument);
  config.site_count = 5;
  config.demand_shape = 1.0;
  EXPECT_THROW((void)make_scenario(config), std::invalid_argument);
  config.demand_shape = 1.5;
  config.mean_demand = -2.0;
  EXPECT_THROW((void)make_scenario(config), std::invalid_argument);
}

TEST(Scenario, Daxlist161ScenarioWrapsTheDataset) {
  const Scenario scenario = daxlist161_scenario();
  EXPECT_EQ(scenario.site_count(), 161u);
  EXPECT_EQ(scenario.client_demand.size(), 161u);
  EXPECT_EQ(scenario.name, "daxlist-161");
}

TEST(LargeTopologySweep, ConstructiveThenLocalOptimumRows) {
  ScenarioConfig config;
  config.site_count = 40;
  config.seed = 11;
  const Scenario scenario = make_scenario(config);
  eval::LargeTopologyConfig sweep;
  sweep.grid_side = 3;
  sweep.majority_universe = 9;
  sweep.majority_quorum = 5;
  sweep.anchor_count = 8;
  const auto points = eval::large_topology_sweep(scenario, sweep);
  // (constructive, local-opt) per (system, objective): 2 systems x
  // {load-aware, closest} x 2 stages.
  ASSERT_EQ(points.size(), 8u);
  std::size_t closest_rows = 0;
  for (std::size_t i = 0; i < points.size(); i += 2) {
    EXPECT_EQ(points[i].stage, "constructive");
    EXPECT_EQ(points[i + 1].stage, "local-opt");
    EXPECT_EQ(points[i].scenario, scenario.name);
    EXPECT_EQ(points[i].objective, points[i + 1].objective);
    EXPECT_TRUE(points[i].objective == "load-aware" || points[i].objective == "closest");
    closest_rows += points[i].objective == "closest" ? 2 : 0;
    // Local search never worsens the objective it optimizes.
    EXPECT_LE(points[i + 1].response_ms, points[i].response_ms + 1e-9);
    // (The historical response >= network-delay check no longer applies:
    // response_ms is now the demand-weighted objective while the delay
    // column stays the uniform balanced measure, and the closest objective
    // prices a cheaper argmin quorum.)
    EXPECT_GT(points[i].response_ms, 0.0);
    EXPECT_GT(points[i].network_delay_ms, 0.0);
    EXPECT_GT(points[i].alpha, 0.0);
  }
  EXPECT_EQ(closest_rows, 4u);

  eval::LargeTopologyConfig load_only = sweep;
  load_only.include_closest = false;
  EXPECT_EQ(eval::large_topology_sweep(scenario, load_only).size(), 4u);
}

TEST(LargeTopologySweep, RejectsUndersizedTopologies) {
  ScenarioConfig config;
  config.site_count = 10;
  const Scenario scenario = make_scenario(config);
  EXPECT_THROW((void)eval::large_topology_sweep(scenario), std::invalid_argument);
}

}  // namespace
}  // namespace qp::sim
