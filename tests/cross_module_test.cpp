// Cross-module scenarios that don't belong to a single unit: non-Grid
// systems through the LP/iterative pipeline, simulator-vs-model agreement,
// and Waxman-graph-driven end-to-end runs.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "net/matrix_io.hpp"
#include "quorum/grid.hpp"

#include "core/capacity.hpp"
#include "core/iterative.hpp"
#include "core/manytoone.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/random_graphs.hpp"
#include "net/synthetic.hpp"
#include "quorum/fpp.hpp"
#include "quorum/majority.hpp"
#include "quorum/tree.hpp"
#include "sim/client_sites.hpp"
#include "sim/protocol_sim.hpp"

namespace qp {
namespace {

TEST(CrossModule, IterativeAlgorithmWorksForMajorities) {
  // §4.2's pipeline is system-agnostic as long as quorums enumerate.
  const net::LatencyMatrix m = net::small_synth(10, 91);
  const quorum::MajorityQuorum majority{5, 3};
  core::IterativeOptions options;
  options.anchor_candidates = {0, 1, 2, 3};
  const auto caps = core::uniform_capacities(m.size(), 0.9);
  const core::IterativeResult result =
      core::iterative_placement(m, majority, caps, /*alpha=*/0.0, options);
  result.placement.validate(m.size());
  result.strategy.validate(m.size(), 5);
  EXPECT_GT(result.avg_response, 0.0);
}

TEST(CrossModule, ManyToOneWorksForTreeQuorums) {
  const net::LatencyMatrix m = net::small_synth(10, 93);
  const quorum::TreeQuorum tree{1};  // 3 elements, 3 quorums.
  const std::vector<double> probs(3, 1.0 / 3.0);
  const auto caps = core::uniform_capacities(m.size(), 1.0);
  const auto result = core::many_to_one_placement(m, tree, probs, caps, 2);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  result.placement.validate(m.size());
}

TEST(CrossModule, StrategyLpWorksForFpp) {
  const net::LatencyMatrix m = net::small_synth(12, 95);
  const quorum::FppQuorum plane{2};  // Fano: 7 elements, 7 lines of 3.
  const core::PlacementSearchResult placed = core::best_placement(
      m, plane, [&](std::size_t v0) { return core::majority_ball_placement(m, 7, v0); });
  const auto caps = core::uniform_capacities(m.size(), 0.8);
  const auto lp = core::optimize_access_strategy(m, plane, placed.placement, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  const auto loads = core::site_loads_explicit(lp.strategy, placed.placement, m.size());
  for (double load : loads) EXPECT_LE(load, 0.8 + 1e-6);
}

TEST(CrossModule, SimulatorAgreesWithAnalyticModelWhenUnloaded) {
  // At negligible load, the DES's mean response under uniform quorum draws
  // must match the analytic balanced network delay (restricted to the
  // client sites) plus one service time.
  const net::LatencyMatrix m = net::small_synth(14, 97);
  const quorum::MajorityQuorum system{6, 5};
  const core::Placement placement = core::best_majority_placement(m, system).placement;
  const std::vector<std::size_t> clients =
      sim::representative_client_sites(m, system, placement, 3);

  sim::ProtocolSimConfig config;
  config.duration_ms = 30'000.0;
  config.warmup_ms = 2'000.0;
  config.seed = 17;
  const auto sim_result = sim::run_protocol_sim(m, system, placement, clients, config);

  double analytic = 0.0;
  for (std::size_t v : clients) {
    const auto values = core::element_distances(m, placement, v);
    analytic += system.expected_max_uniform(values);
  }
  analytic /= static_cast<double>(clients.size());
  EXPECT_NEAR(sim_result.avg_response_ms, analytic + config.service_time_ms,
              0.05 * analytic + 1.0);
  EXPECT_NEAR(sim_result.avg_network_delay_ms, analytic, 0.05 * analytic + 0.5);
}

TEST(CrossModule, WaxmanGraphFullPipelineWithLpStrategies) {
  const net::Graph g = net::waxman_graph({.node_count = 20, .seed = 5});
  const net::LatencyMatrix m = net::LatencyMatrix::from_graph(g);
  const quorum::GridQuorum grid{3};
  const auto placed = core::best_grid_placement(m, 3);
  const auto caps = core::uniform_capacities(m.size(), grid.optimal_load() * 1.5);
  const auto lp = core::optimize_access_strategy(m, grid, placed.placement, caps);
  ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
  const auto eval =
      core::evaluate_explicit(m, grid, placed.placement, 50.0, lp.strategy);
  EXPECT_GT(eval.avg_response_ms, eval.avg_network_delay_ms);
}

TEST(CrossModule, CollapsedModelThroughTheIterativePipeline) {
  // Evaluate an iterative (colocating) placement under both execution
  // models: collapsed can only help.
  const net::LatencyMatrix m = net::small_synth(12, 99);
  const quorum::GridQuorum grid{2};
  core::IterativeOptions options;
  options.anchor_candidates = {0, 1, 2, 3, 4, 5};
  const auto caps = core::uniform_capacities(m.size(), 1.0);
  const auto iterative = core::iterative_placement(m, grid, caps, 0.0, options);
  const double alpha = core::kQuWriteServiceMs * 16'000;
  const auto per_element =
      core::evaluate_explicit(m, grid, iterative.placement, alpha, iterative.strategy,
                              core::ExecutionModel::PerElement);
  const auto collapsed =
      core::evaluate_explicit(m, grid, iterative.placement, alpha, iterative.strategy,
                              core::ExecutionModel::Collapsed);
  EXPECT_LE(collapsed.avg_response_ms, per_element.avg_response_ms + 1e-9);
}

TEST(CrossModule, MatrixRoundTripPreservesExperimentResults) {
  // Serializing a topology and reloading it must not change any measurement.
  const net::LatencyMatrix original = net::small_synth(10, 101);
  std::stringstream buffer;
  net::write_matrix(buffer, original);
  const net::LatencyMatrix reloaded = net::read_matrix(buffer);
  const quorum::GridQuorum grid{2};
  const auto placed_a = core::best_grid_placement(original, 2);
  const auto placed_b = core::best_grid_placement(reloaded, 2);
  EXPECT_EQ(placed_a.placement.site_of, placed_b.placement.site_of);
  EXPECT_NEAR(placed_a.avg_network_delay, placed_b.avg_network_delay, 1e-9);
}

}  // namespace
}  // namespace qp
