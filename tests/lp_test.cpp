#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace qp::lp {
namespace {

Solution solve(LpProblem& problem, SimplexOptions options = {}) {
  return SimplexSolver{options}.solve(problem);
}

TEST(LpProblem, BuilderBasics) {
  LpProblem p;
  const std::size_t x = p.add_variable(2.0, "x");
  const std::size_t row = p.add_row(RowSense::LessEqual, 4.0, "r");
  p.add_coefficient(row, x, 1.0);
  EXPECT_EQ(p.variable_count(), 1u);
  EXPECT_EQ(p.row_count(), 1u);
  EXPECT_DOUBLE_EQ(p.objective_coefficient(x), 2.0);
  EXPECT_EQ(p.variable_name(x), "x");
  EXPECT_EQ(p.row_name(row), "r");
  EXPECT_THROW(p.add_coefficient(5, x, 1.0), std::out_of_range);
  EXPECT_THROW(p.add_coefficient(row, 5, 1.0), std::out_of_range);
  EXPECT_THROW((void)p.add_variable(std::nan("")), std::invalid_argument);
}

TEST(LpProblem, ConsolidateMergesDuplicates) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t row = p.add_row(RowSense::Equal, 3.0);
  p.add_coefficient(row, x, 1.0);
  p.add_coefficient(row, x, 2.0);
  p.consolidate();
  ASSERT_EQ(p.column(x).size(), 1u);
  EXPECT_DOUBLE_EQ(p.column(x)[0].value, 3.0);
}

TEST(LpProblem, ViolationMeasure) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t le = p.add_row(RowSense::LessEqual, 1.0);
  p.add_coefficient(le, x, 1.0);
  EXPECT_DOUBLE_EQ(p.max_violation({2.0}), 1.0);
  EXPECT_DOUBLE_EQ(p.max_violation({0.5}), 0.0);
  EXPECT_DOUBLE_EQ(p.max_violation({-0.5}), 0.5);
}

// A tiny textbook LP:
//   max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
//   optimum (2, 6), objective 36.  (We minimize the negation.)
TEST(Simplex, TextbookOptimum) {
  LpProblem p;
  const std::size_t x = p.add_variable(-3.0);
  const std::size_t y = p.add_variable(-5.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, 4.0), x, 1.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, 12.0), y, 2.0);
  const std::size_t r3 = p.add_row(RowSense::LessEqual, 18.0);
  p.add_coefficient(r3, x, 3.0);
  p.add_coefficient(r3, y, 2.0);

  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 6.0, 1e-9);
  EXPECT_NEAR(p.max_violation(s.values), 0.0, 1e-9);
}

TEST(Simplex, EqualityAndGreaterRows) {
  // min x + 2y  s.t.  x + y = 10, x >= 3, y >= 2  ->  x = 8, y = 2.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(2.0);
  const std::size_t eq = p.add_row(RowSense::Equal, 10.0);
  p.add_coefficient(eq, x, 1.0);
  p.add_coefficient(eq, y, 1.0);
  p.add_coefficient(p.add_row(RowSense::GreaterEqual, 3.0), x, 1.0);
  p.add_coefficient(p.add_row(RowSense::GreaterEqual, 2.0), y, 1.0);

  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.values[x], 8.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 2 cannot hold together.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, 1.0), x, 1.0);
  p.add_coefficient(p.add_row(RowSense::GreaterEqual, 2.0), x, 1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with only x >= 0 and a slack-irrelevant row.
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(1.0);
  const std::size_t row = p.add_row(RowSense::LessEqual, 5.0);
  p.add_coefficient(row, y, 1.0);
  (void)x;
  EXPECT_EQ(solve(p).status, SolveStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x  s.t.  -x <= -5  (i.e. x >= 5).
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, -5.0), x, -1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 5.0, 1e-9);
}

TEST(Simplex, NoConstraints) {
  LpProblem p;
  (void)p.add_variable(1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::Optimal);
  LpProblem q;
  (void)q.add_variable(-1.0);
  EXPECT_EQ(solve(q).status, SolveStatus::Unbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple rows active at the origin.
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(-1.0);
  for (int i = 0; i < 4; ++i) {
    const std::size_t row = p.add_row(RowSense::LessEqual, 0.0);
    p.add_coefficient(row, x, 1.0 + i);
    p.add_coefficient(row, y, -1.0);
  }
  const std::size_t cap = p.add_row(RowSense::LessEqual, 10.0);
  p.add_coefficient(cap, x, 1.0);
  p.add_coefficient(cap, y, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(p.max_violation(s.values), 0.0, 1e-8);
}

TEST(Simplex, TransportationProblem) {
  // Two suppliers (cap 10, 20), three consumers (demand 8, 12, 6);
  // costs c[s][d]. Known optimum by exhaustive reasoning below.
  const double cost[2][3] = {{1.0, 4.0, 7.0}, {3.0, 2.0, 5.0}};
  LpProblem p;
  std::size_t var[2][3];
  for (int s = 0; s < 2; ++s) {
    for (int d = 0; d < 3; ++d) var[s][d] = p.add_variable(cost[s][d]);
  }
  const double supply[2] = {10.0, 20.0};
  const double demand[3] = {8.0, 12.0, 6.0};
  for (int s = 0; s < 2; ++s) {
    const std::size_t row = p.add_row(RowSense::LessEqual, supply[s]);
    for (int d = 0; d < 3; ++d) p.add_coefficient(row, var[s][d], 1.0);
  }
  for (int d = 0; d < 3; ++d) {
    const std::size_t row = p.add_row(RowSense::Equal, demand[d]);
    for (int s = 0; s < 2; ++s) p.add_coefficient(row, var[s][d], 1.0);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  // Supplier 0 serves consumer 0 fully (8) and 2 units elsewhere; cheapest:
  // x00=8, x01=2 (cost 8+8=16) vs routing through supplier 1... the LP
  // optimum is 8*1 + 12*2 + 6*5 = 62 with x00=8, x11=12, x12=6? Check via
  // violation + duality instead of hand-derived values:
  EXPECT_NEAR(p.max_violation(s.values), 0.0, 1e-8);
  EXPECT_NEAR(s.objective, 62.0, 1e-7);
}

TEST(Simplex, DualValuesSatisfyStrongDuality) {
  // For the textbook LP, b^T y must equal the primal objective.
  LpProblem p;
  const std::size_t x = p.add_variable(-3.0);
  const std::size_t y = p.add_variable(-5.0);
  const std::size_t r1 = p.add_row(RowSense::LessEqual, 4.0);
  p.add_coefficient(r1, x, 1.0);
  const std::size_t r2 = p.add_row(RowSense::LessEqual, 12.0);
  p.add_coefficient(r2, y, 2.0);
  const std::size_t r3 = p.add_row(RowSense::LessEqual, 18.0);
  p.add_coefficient(r3, x, 3.0);
  p.add_coefficient(r3, y, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  ASSERT_EQ(s.duals.size(), 3u);
  const double dual_objective = 4.0 * s.duals[0] + 12.0 * s.duals[1] + 18.0 * s.duals[2];
  EXPECT_NEAR(dual_objective, s.objective, 1e-8);
}

// Property sweep: random feasible-by-construction LPs; the simplex solution
// must be feasible and at least as good as a large random-sampling baseline.
class RandomLpSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLpSweep, FeasibleAndBeatsRandomSampling) {
  common::Rng rng{GetParam()};
  const std::size_t vars = 4 + rng.below(5);
  const std::size_t rows = 2 + rng.below(4);

  LpProblem p;
  std::vector<double> c(vars);
  for (std::size_t j = 0; j < vars; ++j) {
    c[j] = rng.uniform(-2.0, 3.0);
    (void)p.add_variable(c[j]);
  }
  // Rows a^T x <= b with a >= 0 and b > 0 keep the origin feasible and the
  // problem bounded in every negative-cost direction with positive row mass.
  std::vector<std::vector<double>> a(rows, std::vector<double>(vars));
  std::vector<double> b(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t row = p.add_row(RowSense::LessEqual, b[i] = rng.uniform(1.0, 5.0));
    for (std::size_t j = 0; j < vars; ++j) {
      a[i][j] = rng.uniform(0.2, 2.0);
      p.add_coefficient(row, j, a[i][j]);
    }
  }

  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_LE(p.max_violation(s.values), 1e-7);

  // Random feasible points never beat the reported optimum.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(vars);
    for (double& v : x) v = rng.uniform(0.0, 1.0);
    // Scale into the feasible region.
    double worst = 1.0;
    for (std::size_t i = 0; i < rows; ++i) {
      double activity = 0.0;
      for (std::size_t j = 0; j < vars; ++j) activity += a[i][j] * x[j];
      if (activity > b[i]) worst = std::max(worst, activity / b[i]);
    }
    for (double& v : x) v /= worst;
    double objective = 0.0;
    for (std::size_t j = 0; j < vars; ++j) objective += c[j] * x[j];
    EXPECT_GE(objective, s.objective - 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(Simplex, MediumScaleStressIsFeasible) {
  // A larger assignment-like LP: 40 clients x 25 options with capacity rows,
  // resembling the access-strategy LP's structure.
  common::Rng rng{777};
  const std::size_t clients = 40, options = 25;
  LpProblem p;
  for (std::size_t v = 0; v < clients; ++v) {
    for (std::size_t i = 0; i < options; ++i) {
      (void)p.add_variable(rng.uniform(1.0, 100.0));
    }
  }
  for (std::size_t i = 0; i < options; ++i) {
    const std::size_t row = p.add_row(RowSense::LessEqual, 0.1);
    for (std::size_t v = 0; v < clients; ++v) {
      p.add_coefficient(row, v * options + i, 1.0 / clients);
    }
  }
  for (std::size_t v = 0; v < clients; ++v) {
    const std::size_t row = p.add_row(RowSense::Equal, 1.0);
    for (std::size_t i = 0; i < options; ++i) p.add_coefficient(row, v * options + i, 1.0);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_LE(p.max_violation(s.values), 1e-6);
  EXPECT_GT(s.objective, 0.0);
}

TEST(Simplex, IterationLimitReported) {
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t row = p.add_row(RowSense::LessEqual, 1.0);
  p.add_coefficient(row, x, 1.0);
  SimplexOptions options;
  options.max_iterations = 1;  // Absurdly small.
  const Solution s = solve(p, options);
  EXPECT_TRUE(s.status == SolveStatus::IterationLimit || s.status == SolveStatus::Optimal);
}

TEST(Simplex, StatusToString) {
  EXPECT_EQ(to_string(SolveStatus::Optimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::Infeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::Unbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::IterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace qp::lp
