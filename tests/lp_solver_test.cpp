// LP-solver layer tests: the sparse revised simplex (lp/revised_simplex)
// against the dense tableau parity reference (lp/simplex), warm starts, the
// transportation specialization of the strategy LP, and basis threading
// through the iterative alternation. See tests/README.md "LP solver".
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/iterative.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "lp/problem.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "net/latency_matrix.hpp"
#include "net/synthetic.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/tree.hpp"

namespace qp {
namespace {

using lp::LpProblem;
using lp::RevisedSimplexSolver;
using lp::RowSense;
using lp::SimplexOptions;
using lp::SimplexSolver;
using lp::Solution;
using lp::SolveResult;
using lp::SolveStatus;

SolveResult solve_revised(LpProblem& problem, SimplexOptions options = {}) {
  return RevisedSimplexSolver{options}.solve(problem);
}

Solution solve_dense(LpProblem& problem, SimplexOptions options = {}) {
  return SimplexSolver{options}.solve(problem);
}

/// |a - b| <= eps * max(1, |b|): the repo-wide parity comparison.
void expect_parity(double actual, double expected, double eps = 1e-9) {
  EXPECT_LE(std::abs(actual - expected), eps * std::max(1.0, std::abs(expected)))
      << "actual=" << actual << " expected=" << expected;
}

TEST(RevisedSimplex, TextbookOptimum) {
  LpProblem p;
  const std::size_t x = p.add_variable(-3.0);
  const std::size_t y = p.add_variable(-5.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, 4.0), x, 1.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, 12.0), y, 2.0);
  const std::size_t r3 = p.add_row(RowSense::LessEqual, 18.0);
  p.add_coefficient(r3, x, 3.0);
  p.add_coefficient(r3, y, 2.0);

  const SolveResult s = solve_revised(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 6.0, 1e-9);
  EXPECT_NEAR(p.max_violation(s.values), 0.0, 1e-9);
  ASSERT_EQ(s.basis.basic.size(), 3u);
  // Strong duality, as for the dense solver.
  const double dual = 4.0 * s.duals[0] + 12.0 * s.duals[1] + 18.0 * s.duals[2];
  EXPECT_NEAR(dual, s.objective, 1e-8);
}

TEST(RevisedSimplex, EqualityAndGreaterRows) {
  // min x + 2y  s.t.  x + y = 10, x >= 3, y >= 2  ->  x = 8, y = 2.
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  const std::size_t y = p.add_variable(2.0);
  const std::size_t eq = p.add_row(RowSense::Equal, 10.0);
  p.add_coefficient(eq, x, 1.0);
  p.add_coefficient(eq, y, 1.0);
  p.add_coefficient(p.add_row(RowSense::GreaterEqual, 3.0), x, 1.0);
  p.add_coefficient(p.add_row(RowSense::GreaterEqual, 2.0), y, 1.0);

  const SolveResult s = solve_revised(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.values[x], 8.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
}

TEST(RevisedSimplex, DetectsInfeasible) {
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, 1.0), x, 1.0);
  p.add_coefficient(p.add_row(RowSense::GreaterEqual, 2.0), x, 1.0);
  EXPECT_EQ(solve_revised(p).status, SolveStatus::Infeasible);
}

TEST(RevisedSimplex, DetectsUnbounded) {
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(1.0);
  const std::size_t row = p.add_row(RowSense::LessEqual, 5.0);
  p.add_coefficient(row, y, 1.0);
  (void)x;
  EXPECT_EQ(solve_revised(p).status, SolveStatus::Unbounded);
}

TEST(RevisedSimplex, NegativeRhsNormalization) {
  // min x  s.t.  -x <= -5  (i.e. x >= 5).
  LpProblem p;
  const std::size_t x = p.add_variable(1.0);
  p.add_coefficient(p.add_row(RowSense::LessEqual, -5.0), x, -1.0);
  const SolveResult s = solve_revised(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 5.0, 1e-9);
}

TEST(RevisedSimplex, NoConstraints) {
  LpProblem p;
  (void)p.add_variable(1.0);
  EXPECT_EQ(solve_revised(p).status, SolveStatus::Optimal);
  LpProblem q;
  (void)q.add_variable(-1.0);
  EXPECT_EQ(solve_revised(q).status, SolveStatus::Unbounded);
}

TEST(RevisedSimplex, DegenerateProblemTerminates) {
  // Multiple rows active at the origin (the dense suite's cycling guard).
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t y = p.add_variable(-1.0);
  for (int i = 0; i < 4; ++i) {
    const std::size_t row = p.add_row(RowSense::LessEqual, 0.0);
    p.add_coefficient(row, x, 1.0 + i);
    p.add_coefficient(row, y, -1.0);
  }
  const std::size_t cap = p.add_row(RowSense::LessEqual, 10.0);
  p.add_coefficient(cap, x, 1.0);
  p.add_coefficient(cap, y, 1.0);
  const SolveResult s = solve_revised(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(p.max_violation(s.values), 0.0, 1e-8);
}

/// Random mixed-sense LP, feasible by construction: pick an interior point
/// x0 >= 0, set each row's rhs from its activity at x0 (with slack for the
/// inequality senses), and bound the feasible region so negative costs
/// cannot ride a ray to infinity.
LpProblem random_mixed_lp(common::Rng& rng, std::size_t vars, std::size_t rows) {
  LpProblem p;
  std::vector<double> x0(vars);
  for (std::size_t j = 0; j < vars; ++j) {
    x0[j] = rng.uniform(0.0, 2.0);
    (void)p.add_variable(rng.uniform(-2.0, 3.0));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> a(vars);
    double activity = 0.0;
    for (std::size_t j = 0; j < vars; ++j) {
      a[j] = rng.uniform(-1.0, 2.0);
      activity += a[j] * x0[j];
    }
    const std::size_t kind = rng.below(3);
    std::size_t row = 0;
    if (kind == 0) {
      row = p.add_row(RowSense::LessEqual, activity + rng.uniform(0.1, 2.0));
    } else if (kind == 1) {
      row = p.add_row(RowSense::GreaterEqual, activity - rng.uniform(0.1, 2.0));
    } else {
      row = p.add_row(RowSense::Equal, activity);
    }
    for (std::size_t j = 0; j < vars; ++j) p.add_coefficient(row, j, a[j]);
  }
  // Box the region: sum x <= sum x0 + margin keeps every cost bounded.
  double total = 0.0;
  for (double v : x0) total += v;
  const std::size_t box = p.add_row(RowSense::LessEqual, total + 10.0);
  for (std::size_t j = 0; j < vars; ++j) p.add_coefficient(box, j, 1.0);
  return p;
}

class RandomLpParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLpParity, RevisedMatchesDense) {
  common::Rng rng{GetParam()};
  const std::size_t vars = 4 + rng.below(8);
  const std::size_t rows = 2 + rng.below(6);
  LpProblem p = random_mixed_lp(rng, vars, rows);
  LpProblem q = p;

  const Solution dense = solve_dense(p);
  const SolveResult revised = solve_revised(q);
  ASSERT_EQ(dense.status, SolveStatus::Optimal);
  ASSERT_EQ(revised.status, SolveStatus::Optimal);
  expect_parity(revised.objective, dense.objective);
  EXPECT_LE(q.max_violation(revised.values), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpParity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                                           15, 16, 17, 18, 19, 20));

TEST(RevisedSimplex, WarmRestartOfSameProblemTakesNoPivots) {
  common::Rng rng{42};
  LpProblem p = random_mixed_lp(rng, 10, 6);
  LpProblem q = p;
  const SolveResult cold = solve_revised(p);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);

  SimplexOptions warm_options;
  warm_options.initial_basis = cold.basis;
  const SolveResult warm = solve_revised(q, warm_options);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  expect_parity(warm.objective, cold.objective);
  // Re-solving from the optimal basis is one optimality-confirming pass.
  EXPECT_LE(warm.iterations, 2u);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(RevisedSimplex, WarmStartEqualsColdStartAfterPerturbation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    common::Rng rng{seed};
    LpProblem base = random_mixed_lp(rng, 12, 8);
    LpProblem warm_copy = base;
    const SolveResult cold_base = solve_revised(base);
    ASSERT_EQ(cold_base.status, SolveStatus::Optimal);

    // Same constraint matrix, perturbed objective: rebuild with nudged costs.
    LpProblem perturbed;
    for (std::size_t j = 0; j < warm_copy.variable_count(); ++j) {
      (void)perturbed.add_variable(warm_copy.objective_coefficient(j) +
                                   rng.uniform(-0.05, 0.05));
    }
    for (std::size_t i = 0; i < warm_copy.row_count(); ++i) {
      (void)perturbed.add_row(warm_copy.row_sense(i),
                              warm_copy.rhs(i) + rng.uniform(-0.01, 0.01));
    }
    for (std::size_t j = 0; j < warm_copy.variable_count(); ++j) {
      for (const lp::ColumnEntry& entry : warm_copy.column(j)) {
        perturbed.add_coefficient(entry.row, j, entry.value);
      }
    }
    LpProblem perturbed_cold = perturbed;

    SimplexOptions warm_options;
    warm_options.initial_basis = cold_base.basis;
    const SolveResult warm = solve_revised(perturbed, warm_options);
    const SolveResult cold = solve_revised(perturbed_cold);
    if (cold.status != SolveStatus::Optimal) continue;  // rhs nudge may cut x0.
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << "seed " << seed;
    expect_parity(warm.objective, cold.objective);
    EXPECT_LE(warm.iterations, cold.iterations) << "seed " << seed;
  }
}

TEST(RevisedSimplex, GarbageBasisFallsBackToColdStart) {
  common::Rng rng{7};
  LpProblem p = random_mixed_lp(rng, 8, 5);
  LpProblem q = p;
  const SolveResult reference = solve_revised(p);
  ASSERT_EQ(reference.status, SolveStatus::Optimal);

  SimplexOptions options;
  // Wrong-shaped, duplicated, and out-of-range entries all at once.
  options.initial_basis.basic.assign(q.row_count(), 123456789u);
  const SolveResult patched = solve_revised(q, options);
  ASSERT_EQ(patched.status, SolveStatus::Optimal);
  expect_parity(patched.objective, reference.objective);
}

TEST(RevisedSimplex, IterationLimitReported) {
  LpProblem p;
  const std::size_t x = p.add_variable(-1.0);
  const std::size_t row = p.add_row(RowSense::LessEqual, 1.0);
  p.add_coefficient(row, x, 1.0);
  SimplexOptions options;
  options.max_iterations = 1;
  const SolveResult s = solve_revised(p, options);
  EXPECT_TRUE(s.status == SolveStatus::IterationLimit ||
              s.status == SolveStatus::Optimal);
}

TEST(RevisedSimplex, MediumScaleStrategyShapedLp) {
  // The access-strategy LP's structure: capacity rows + distribution rows.
  common::Rng rng{777};
  const std::size_t clients = 40, options = 25;
  LpProblem p;
  for (std::size_t v = 0; v < clients; ++v) {
    for (std::size_t i = 0; i < options; ++i) {
      (void)p.add_variable(rng.uniform(1.0, 100.0));
    }
  }
  for (std::size_t i = 0; i < options; ++i) {
    const std::size_t row = p.add_row(RowSense::LessEqual, 0.1);
    for (std::size_t v = 0; v < clients; ++v) {
      p.add_coefficient(row, v * options + i, 1.0 / clients);
    }
  }
  for (std::size_t v = 0; v < clients; ++v) {
    const std::size_t row = p.add_row(RowSense::Equal, 1.0);
    for (std::size_t i = 0; i < options; ++i) p.add_coefficient(row, v * options + i, 1.0);
  }
  LpProblem q = p;
  const Solution dense = solve_dense(p);
  const SolveResult revised = solve_revised(q);
  ASSERT_EQ(dense.status, SolveStatus::Optimal);
  ASSERT_EQ(revised.status, SolveStatus::Optimal);
  expect_parity(revised.objective, dense.objective);
  EXPECT_LE(q.max_violation(revised.values), 1e-6);
}

// ---------------------------------------------------------------------------
// Strategy level: LP (4.3)-(4.6) through the engine router in
// optimize_access_strategy — Dense stays the parity reference, Revised and
// Transportation must agree with it on every quorum family.
// ---------------------------------------------------------------------------

using core::Placement;
using core::StrategyLpOptions;
using core::StrategyLpResult;
using core::StrategyLpSolver;

Placement identity_placement(std::size_t universe) {
  Placement placement;
  placement.site_of.resize(universe);
  for (std::size_t e = 0; e < universe; ++e) placement.site_of[e] = e;
  return placement;
}

/// Capacities a shade above the balanced strategy's loads: feasible by
/// construction (the balanced strategy satisfies them) and binding for the
/// delay optimizer, which wants to concentrate weight on close quorums.
std::vector<double> binding_caps(const quorum::QuorumSystem& system,
                                 const Placement& placement, std::size_t site_count,
                                 double slack = 1.02) {
  const std::vector<double> balanced =
      core::site_loads_balanced(system, placement, site_count);
  std::vector<double> caps(site_count, 1.0);
  for (std::size_t w = 0; w < site_count; ++w) {
    if (balanced[w] > 0.0) caps[w] = slack * balanced[w];
  }
  return caps;
}

StrategyLpResult solve_strategy(const net::LatencyMatrix& matrix,
                                const quorum::QuorumSystem& system,
                                const Placement& placement,
                                std::span<const double> caps, StrategyLpSolver solver,
                                lp::Basis warm = {}) {
  StrategyLpOptions options;
  options.solver = solver;
  options.simplex.initial_basis = std::move(warm);
  return core::optimize_access_strategy(matrix, system, placement, caps, options);
}

class StrategyLpParity : public ::testing::TestWithParam<const char*> {
 protected:
  static std::unique_ptr<quorum::QuorumSystem> make_system(const std::string& name) {
    if (name == "grid") return std::make_unique<quorum::GridQuorum>(3);
    if (name == "majority") return std::make_unique<quorum::MajorityQuorum>(9, 5);
    if (name == "fpp") return std::make_unique<quorum::FppQuorum>(2);
    return std::make_unique<quorum::TreeQuorum>(2);
  }
};

TEST_P(StrategyLpParity, RevisedMatchesDenseWithAndWithoutCapacityRows) {
  const auto system = make_system(GetParam());
  const net::LatencyMatrix matrix = net::small_synth(20, 901);
  const Placement placement = identity_placement(system->universe_size());

  const std::vector<double> loose(matrix.size(), 1e9);
  const std::vector<double> tight = binding_caps(*system, placement, matrix.size());
  for (const std::vector<double>* caps : {&loose, &tight}) {
    const StrategyLpResult dense =
        solve_strategy(matrix, *system, placement, *caps, StrategyLpSolver::Dense);
    const StrategyLpResult revised =
        solve_strategy(matrix, *system, placement, *caps, StrategyLpSolver::Revised);
    ASSERT_EQ(dense.status, SolveStatus::Optimal);
    ASSERT_EQ(revised.status, SolveStatus::Optimal);
    EXPECT_EQ(dense.solver_used, StrategyLpSolver::Dense);
    EXPECT_EQ(revised.solver_used, StrategyLpSolver::Revised);
    expect_parity(revised.avg_network_delay, dense.avg_network_delay);
    revised.strategy.validate(matrix.size(), system->universe_size());
    EXPECT_FALSE(revised.basis.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(QuorumFamilies, StrategyLpParity,
                         ::testing::Values("grid", "majority", "fpp", "tree"),
                         [](const auto& info) { return std::string{info.param}; });

TEST(StrategyLp, TransportationMatchesGeneralEnginesUncapacitated) {
  const quorum::GridQuorum grid{3};
  const net::LatencyMatrix matrix = net::small_synth(24, 907);
  const Placement placement = identity_placement(grid.universe_size());
  const std::vector<double> loose(matrix.size(), 1e9);

  const StrategyLpResult automatic =
      solve_strategy(matrix, grid, placement, loose, StrategyLpSolver::Auto);
  ASSERT_EQ(automatic.status, SolveStatus::Optimal);
  // No capacity row can bind -> Auto routes through the min-cost-flow
  // transportation specialization, pivot-free.
  EXPECT_EQ(automatic.solver_used, StrategyLpSolver::Transportation);
  EXPECT_EQ(automatic.lp_iterations, 0u);

  const StrategyLpResult dense =
      solve_strategy(matrix, grid, placement, loose, StrategyLpSolver::Dense);
  const StrategyLpResult revised =
      solve_strategy(matrix, grid, placement, loose, StrategyLpSolver::Revised);
  expect_parity(automatic.avg_network_delay, dense.avg_network_delay);
  expect_parity(revised.avg_network_delay, dense.avg_network_delay);
  automatic.strategy.validate(matrix.size(), grid.universe_size());
}

TEST(StrategyLp, ExplicitTransportationDowngradesWhenCapsCanBind) {
  const quorum::GridQuorum grid{3};
  const net::LatencyMatrix matrix = net::small_synth(20, 911);
  const Placement placement = identity_placement(grid.universe_size());
  const std::vector<double> tight = binding_caps(grid, placement, matrix.size());

  const StrategyLpResult lp =
      solve_strategy(matrix, grid, placement, tight, StrategyLpSolver::Transportation);
  ASSERT_EQ(lp.status, SolveStatus::Optimal);
  EXPECT_EQ(lp.solver_used, StrategyLpSolver::Revised);
}

TEST(StrategyLp, WarmStartReachesColdOptimum) {
  const quorum::GridQuorum grid{3};
  const net::LatencyMatrix matrix = net::small_synth(24, 919);
  const Placement placement = identity_placement(grid.universe_size());

  const std::vector<double> first = binding_caps(grid, placement, matrix.size(), 1.05);
  const std::vector<double> second = binding_caps(grid, placement, matrix.size(), 1.02);
  const StrategyLpResult seed =
      solve_strategy(matrix, grid, placement, first, StrategyLpSolver::Revised);
  ASSERT_EQ(seed.status, SolveStatus::Optimal);
  ASSERT_FALSE(seed.basis.empty());

  const StrategyLpResult cold =
      solve_strategy(matrix, grid, placement, second, StrategyLpSolver::Revised);
  const StrategyLpResult warm = solve_strategy(matrix, grid, placement, second,
                                               StrategyLpSolver::Revised, seed.basis);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  expect_parity(warm.avg_network_delay, cold.avg_network_delay);
  // Re-solving a neighbouring rhs from the previous optimal basis must not
  // cost more pivots than starting over.
  EXPECT_LE(warm.lp_iterations, cold.lp_iterations);
}

TEST(StrategyLp, IterativeWarmStartMatchesColdRun) {
  const net::LatencyMatrix matrix = net::small_synth(16, 23);
  const quorum::GridQuorum grid{2};
  const std::vector<double> caps(matrix.size(), 0.8);

  core::IterativeOptions warm_options;
  warm_options.anchor_candidates = {0, 1, 2, 3};
  core::IterativeOptions cold_options = warm_options;
  cold_options.warm_start = false;

  const core::IterativeResult warm =
      core::iterative_placement(matrix, grid, caps, /*alpha=*/5.0, warm_options);
  const core::IterativeResult cold =
      core::iterative_placement(matrix, grid, caps, /*alpha=*/5.0, cold_options);
  // Warm starts change pivot counts, never results: identical placements,
  // strategies, and responses.
  EXPECT_EQ(warm.placement.site_of, cold.placement.site_of);
  expect_parity(warm.avg_response, cold.avg_response);
  ASSERT_EQ(warm.history.size(), cold.history.size());
  for (std::size_t i = 0; i < warm.history.size(); ++i) {
    expect_parity(warm.history[i].response_after_strategy,
                  cold.history[i].response_after_strategy);
    EXPECT_FALSE(cold.history[i].lp_warm_started);
  }
}

TEST(StrategyLp, IterativeDenseAndRevisedEnginesAgree) {
  // The alternation end-to-end on each general engine: iteration 1 starts
  // from the uniform strategy either way, so its phase-2 LP is identical
  // and the engines must agree on its value; the full runs must land on
  // the same final response up to alternate-optimum noise.
  const net::LatencyMatrix matrix = net::small_synth(16, 29);
  const quorum::GridQuorum grid{2};
  const std::vector<double> caps(matrix.size(), 0.8);

  core::IterativeOptions dense_options;
  dense_options.anchor_candidates = {0, 1, 2, 3};
  dense_options.warm_start = false;
  dense_options.strategy.solver = StrategyLpSolver::Dense;
  core::IterativeOptions revised_options = dense_options;
  revised_options.strategy.solver = StrategyLpSolver::Revised;

  const core::IterativeResult dense =
      core::iterative_placement(matrix, grid, caps, /*alpha=*/5.0, dense_options);
  const core::IterativeResult revised =
      core::iterative_placement(matrix, grid, caps, /*alpha=*/5.0, revised_options);
  ASSERT_FALSE(dense.history.empty());
  ASSERT_FALSE(revised.history.empty());
  expect_parity(revised.history[0].network_after_strategy,
                dense.history[0].network_after_strategy);
  expect_parity(revised.avg_response, dense.avg_response, 1e-6);
}

}  // namespace
}  // namespace qp
