// Parity suite for the pluggable Objective layer and the load-aware
// (alpha > 0) incremental path: LoadAwareObjective must match the §7
// balanced-strategy response time, the DeltaEvaluator load-delta tables must
// match the naive objective to 1e-9 across all four quorum-system families,
// random demand levels, and randomized move sequences (including moves that
// colocate elements and hence shift load at both endpoint sites), and the
// parallel neighborhood scan must stay deterministic for alpha > 0.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/delta_eval.hpp"
#include "core/iterative.hpp"
#include "core/local_search.hpp"
#include "core/objective.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "net/synthetic.hpp"
#include "quorum/fpp.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/tree.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

struct SystemCase {
  std::string label;
  std::unique_ptr<quorum::QuorumSystem> system;
};

/// The four quorum-system families: Majority (order-statistic delta path),
/// Grid (row/column path), FPP and Tree (enumerated path). Tree matters
/// most here: its uniform load is NOT element-symmetric, so the load term
/// genuinely reshapes the objective rather than shifting it by a constant.
std::vector<SystemCase> all_systems() {
  std::vector<SystemCase> cases;
  cases.push_back({"majority", std::make_unique<quorum::MajorityQuorum>(9, 5)});
  cases.push_back({"grid", std::make_unique<quorum::GridQuorum>(3)});
  cases.push_back({"fpp", std::make_unique<quorum::FppQuorum>(2)});
  cases.push_back({"tree", std::make_unique<quorum::TreeQuorum>(2)});
  return cases;
}

Placement random_one_to_one(const LatencyMatrix& m, std::size_t universe,
                            common::Rng& rng) {
  return Placement{rng.sample_without_replacement(m.size(), universe)};
}

/// Random placement with deliberate colocation: roughly half the elements
/// share sites, exercising the load-shift (general) delta path.
Placement random_many_to_one(const LatencyMatrix& m, std::size_t universe,
                             common::Rng& rng) {
  Placement placement;
  placement.site_of.resize(universe);
  const std::size_t distinct = std::max<std::size_t>(1, universe / 2);
  const std::vector<std::size_t> sites = rng.sample_without_replacement(m.size(), distinct);
  for (std::size_t u = 0; u < universe; ++u) {
    placement.site_of[u] = sites[rng.below(distinct)];
  }
  return placement;
}

double naive_if_moved(const LatencyMatrix& m, const quorum::QuorumSystem& system,
                      const Objective& objective, Placement placement,
                      std::size_t element, std::size_t site) {
  placement.site_of[element] = site;
  return objective.evaluate(m, system, placement);
}

TEST(Objective, NetworkDelayMatchesAverageUniformNetworkDelay) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 7, 41);
    common::Rng rng{5};
    const Placement placement = random_one_to_one(m, n, rng);
    const double objective =
        network_delay_objective().evaluate(m, *test_case.system, placement);
    const double naive = average_uniform_network_delay(m, *test_case.system, placement);
    EXPECT_DOUBLE_EQ(objective, naive) << test_case.label;
  }
}

TEST(Objective, LoadAwareMatchesBalancedEvaluation) {
  // The load-aware objective is exactly the §7 balanced-strategy response
  // time (per-element execution): compare against evaluate_balanced across
  // systems, placements (including many-to-one), and alpha levels.
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 43);
    common::Rng rng{17};
    for (const double alpha : {0.007, 7.0, 56.0}) {
      const LoadAwareObjective objective{alpha};
      for (int trial = 0; trial < 3; ++trial) {
        const Placement placement = trial == 2 ? random_many_to_one(m, n, rng)
                                               : random_one_to_one(m, n, rng);
        const double value = objective.evaluate(m, *test_case.system, placement);
        const Evaluation balanced =
            evaluate_balanced(m, *test_case.system, placement, alpha);
        EXPECT_NEAR(value, balanced.avg_response_ms,
                    1e-9 * std::max(1.0, balanced.avg_response_ms))
            << test_case.label << " alpha " << alpha << " trial " << trial;
      }
    }
  }
}

TEST(Objective, ForDemandScalesTheServiceTime) {
  const LoadAwareObjective objective = LoadAwareObjective::for_demand(16'000.0);
  EXPECT_DOUBLE_EQ(objective.alpha(), kQuWriteServiceMs * 16'000.0);
  EXPECT_THROW(LoadAwareObjective{-1.0}, std::invalid_argument);
}

TEST(LoadAwareDeltaEval, MatchesNaiveAtConstruction) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 8, 107);
    common::Rng rng{7};
    const LoadAwareObjective objective{11.0};
    for (int trial = 0; trial < 5; ++trial) {
      const Placement placement = random_one_to_one(m, n, rng);
      const DeltaEvaluator eval{m, *test_case.system, placement, objective};
      const double naive = objective.evaluate(m, *test_case.system, placement);
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " trial " << trial;
    }
  }
}

TEST(LoadAwareDeltaEval, CandidateMovesMatchNaiveAcrossAllSystems) {
  // Every (element, site) candidate from a one-to-one placement, at several
  // random demand levels: moves to unused sites take the fast
  // single-coordinate path, moves onto occupied sites take the load-shift
  // fallback; both must match the naive objective.
  common::Rng demand_rng{1009};
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 10, 223);
    common::Rng rng{13};
    for (int trial = 0; trial < 2; ++trial) {
      const LoadAwareObjective objective{demand_rng.uniform(0.01, 90.0)};
      const Placement placement = random_one_to_one(m, n, rng);
      const DeltaEvaluator eval{m, *test_case.system, placement, objective};
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t w = 0; w < m.size(); ++w) {
          const double delta = eval.objective_if_moved(u, w);
          const double naive =
              naive_if_moved(m, *test_case.system, objective, placement, u, w);
          EXPECT_NEAR(delta, naive, 1e-9 * std::max(1.0, naive))
              << test_case.label << " move " << u << "->" << w;
        }
      }
    }
  }
}

TEST(LoadAwareDeltaEval, ColocatedPlacementsMatchNaive) {
  // Start from a many-to-one placement: every candidate involves load shifts
  // at sites hosting several elements (the general path plus the per-site
  // load tables).
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 6, 331);
    common::Rng rng{29};
    const LoadAwareObjective objective{23.0};
    const Placement placement = random_many_to_one(m, n, rng);
    const DeltaEvaluator eval{m, *test_case.system, placement, objective};
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t w = 0; w < m.size(); ++w) {
        const double delta = eval.objective_if_moved(u, w);
        const double naive =
            naive_if_moved(m, *test_case.system, objective, placement, u, w);
        EXPECT_NEAR(delta, naive, 1e-9 * std::max(1.0, naive))
            << test_case.label << " move " << u << "->" << w;
      }
    }
  }
}

TEST(LoadAwareDeltaEval, RandomizedMoveSequencesStayInParity) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 12, 307);
    common::Rng rng{31};
    const LoadAwareObjective objective{47.0};
    Placement placement = random_one_to_one(m, n, rng);
    DeltaEvaluator eval{m, *test_case.system, placement, objective};
    for (int step = 0; step < 20; ++step) {
      const std::size_t u = static_cast<std::size_t>(rng.below(n));
      const std::size_t w = static_cast<std::size_t>(rng.below(m.size()));
      const double predicted = eval.objective_if_moved(u, w);
      eval.apply_move(u, w);
      placement.site_of[u] = w;
      const double naive = objective.evaluate(m, *test_case.system, placement);
      EXPECT_NEAR(predicted, naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
    }
  }
}

TEST(LoadAwareLocalSearch, DeltaEngineMatchesNaiveEngine) {
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 601);
    common::Rng rng{43};
    const LoadAwareObjective objective{33.0};
    const Placement initial = random_one_to_one(m, n, rng);

    LocalSearchOptions naive_options;
    naive_options.engine = LocalSearchEngine::Naive;
    naive_options.objective = &objective;
    const LocalSearchResult naive =
        local_search_placement(m, *test_case.system, initial, naive_options);

    LocalSearchOptions delta_options;
    delta_options.engine = LocalSearchEngine::Delta;
    delta_options.threads = 1;
    delta_options.objective = &objective;
    const LocalSearchResult delta =
        local_search_placement(m, *test_case.system, initial, delta_options);

    EXPECT_EQ(delta.placement.site_of, naive.placement.site_of) << test_case.label;
    EXPECT_EQ(delta.moves, naive.moves) << test_case.label;
    EXPECT_NEAR(delta.objective, naive.objective, 1e-9 * std::max(1.0, naive.objective))
        << test_case.label;
  }
}

TEST(LoadAwareLocalSearch, ParallelScanIsDeterministicForAlphaPositive) {
  const LatencyMatrix m = net::small_synth(24, 701);
  const quorum::TreeQuorum tree{2};
  common::Rng rng{53};
  const LoadAwareObjective objective{29.0};
  const Placement initial = random_one_to_one(m, tree.universe_size(), rng);

  LocalSearchOptions serial;
  serial.threads = 1;
  serial.objective = &objective;
  const LocalSearchResult reference = local_search_placement(m, tree, initial, serial);

  for (std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    LocalSearchOptions parallel = serial;
    parallel.threads = threads;
    const LocalSearchResult result = local_search_placement(m, tree, initial, parallel);
    EXPECT_EQ(result.placement.site_of, reference.placement.site_of)
        << "threads=" << threads;
    EXPECT_EQ(result.moves, reference.moves) << "threads=" << threads;
    EXPECT_EQ(result.objective, reference.objective) << "threads=" << threads;
  }
}

TEST(LoadAwareLocalSearch, NeverWorsensTheObjective) {
  const LatencyMatrix m = net::small_synth(18, 5);
  const quorum::GridQuorum grid{2};
  common::Rng rng{9};
  const LoadAwareObjective objective{61.0};
  for (int trial = 0; trial < 5; ++trial) {
    const Placement initial = random_one_to_one(m, 4, rng);
    const double before = objective.evaluate(m, grid, initial);
    LocalSearchOptions options;
    options.objective = &objective;
    const LocalSearchResult result = local_search_placement(m, grid, initial, options);
    EXPECT_LE(result.objective, before + 1e-12);
    EXPECT_NEAR(result.objective, objective.evaluate(m, grid, result.placement), 1e-12);
    EXPECT_TRUE(result.placement.one_to_one());
  }
}

TEST(FirstImprovement, ReachesALocalOptimumMatchingEngines) {
  // First-improvement must agree between the naive and delta engines
  // (identical deterministic scan order), never worsen the objective, and
  // leave no improving move behind (re-running makes zero moves).
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 8, 811);
    common::Rng rng{59};
    const Placement initial = random_one_to_one(m, n, rng);

    LocalSearchOptions naive_options;
    naive_options.engine = LocalSearchEngine::Naive;
    naive_options.strategy = LocalSearchStrategy::FirstImprovement;
    naive_options.max_rounds = 500;
    const LocalSearchResult naive =
        local_search_placement(m, *test_case.system, initial, naive_options);

    LocalSearchOptions delta_options;
    delta_options.strategy = LocalSearchStrategy::FirstImprovement;
    delta_options.threads = 1;
    delta_options.max_rounds = 500;
    const LocalSearchResult delta =
        local_search_placement(m, *test_case.system, initial, delta_options);

    EXPECT_EQ(delta.placement.site_of, naive.placement.site_of) << test_case.label;
    EXPECT_EQ(delta.moves, naive.moves) << test_case.label;

    const double before = average_uniform_network_delay(m, *test_case.system, initial);
    EXPECT_LE(delta.objective, before + 1e-12) << test_case.label;
    const LocalSearchResult again =
        local_search_placement(m, *test_case.system, delta.placement, delta_options);
    EXPECT_EQ(again.moves, 0u) << test_case.label;
  }
}

TEST(FirstImprovement, ParallelBlocksMatchSerialScan) {
  const LatencyMatrix m = net::small_synth(26, 907);
  const quorum::GridQuorum grid{3};
  common::Rng rng{61};
  const Placement initial = random_one_to_one(m, grid.universe_size(), rng);

  LocalSearchOptions serial;
  serial.strategy = LocalSearchStrategy::FirstImprovement;
  serial.threads = 1;
  const LocalSearchResult reference = local_search_placement(m, grid, initial, serial);

  for (std::size_t threads : {std::size_t{0}, std::size_t{3}}) {
    LocalSearchOptions parallel = serial;
    parallel.threads = threads;
    const LocalSearchResult result = local_search_placement(m, grid, initial, parallel);
    EXPECT_EQ(result.placement.site_of, reference.placement.site_of)
        << "threads=" << threads;
    EXPECT_EQ(result.moves, reference.moves) << "threads=" << threads;
    EXPECT_EQ(result.objective, reference.objective) << "threads=" << threads;
  }
}

TEST(ObjectiveBestPlacement, LoadAwareOverloadPicksTheObjectiveWinner) {
  const LatencyMatrix m = net::small_synth(20, 997);
  const quorum::MajorityQuorum majority{5, 3};
  const LoadAwareObjective objective{19.0};
  // Hand-rolled serial scan with the historical tie-breaking, scored by the
  // load-aware objective.
  PlacementSearchResult expected;
  expected.avg_network_delay = std::numeric_limits<double>::infinity();
  for (std::size_t v0 = 0; v0 < m.size(); ++v0) {
    Placement placement = majority_ball_placement(m, majority.universe_size(), v0);
    const double value = objective.evaluate(m, majority, placement);
    if (value < expected.avg_network_delay) {
      expected.avg_network_delay = value;
      expected.anchor_client = v0;
      expected.placement = std::move(placement);
    }
  }
  const PlacementSearchResult actual = best_placement(
      m, majority, objective,
      [&](std::size_t v0) { return majority_ball_placement(m, majority.universe_size(), v0); });
  EXPECT_EQ(actual.anchor_client, expected.anchor_client);
  EXPECT_EQ(actual.placement.site_of, expected.placement.site_of);
  EXPECT_NEAR(actual.avg_network_delay, expected.avg_network_delay,
              1e-12 * std::max(1.0, expected.avg_network_delay));
}

TEST(ObjectiveIterative, ObjectiveOverloadMatchesBareAlpha) {
  const LatencyMatrix m = net::small_synth(12, 1013);
  const quorum::GridQuorum grid{2};
  const std::vector<double> caps(m.size(), 1.0);
  IterativeOptions options;
  options.max_iterations = 2;
  const LoadAwareObjective objective{7.0};
  const IterativeResult via_objective =
      iterative_placement(m, grid, caps, objective, options);
  const IterativeResult via_alpha = iterative_placement(m, grid, caps, 7.0, options);
  EXPECT_EQ(via_objective.placement.site_of, via_alpha.placement.site_of);
  EXPECT_DOUBLE_EQ(via_objective.avg_response, via_alpha.avg_response);
}

std::vector<double> random_demand(std::size_t clients, common::Rng& rng) {
  std::vector<double> demand(clients);
  for (double& d : demand) d = rng.uniform(0.5, 20.0);
  return demand;
}

TEST(DemandWeightedObjective, LoadAwareMatchesWeightedBalancedEvaluation) {
  // The demand-weighted load-aware objective is the demand-weighted §7
  // balanced response: per-client terms weighted by demand share, load model
  // untouched (the balanced load is demand-invariant).
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 9, 211);
    common::Rng rng{67};
    const std::vector<double> demand = random_demand(m.size(), rng);
    const LoadAwareObjective objective{11.0, std::span<const double>{demand}};
    EXPECT_FALSE(objective.client_weights().empty());
    for (int trial = 0; trial < 2; ++trial) {
      const Placement placement = trial == 1 ? random_many_to_one(m, n, rng)
                                             : random_one_to_one(m, n, rng);
      const double value = objective.evaluate(m, *test_case.system, placement);
      const Evaluation balanced =
          evaluate_balanced(m, *test_case.system, placement, 11.0, demand);
      EXPECT_NEAR(value, balanced.avg_response_ms,
                  1e-9 * std::max(1.0, balanced.avg_response_ms))
          << test_case.label << " trial " << trial;
    }
  }
}

TEST(DemandWeightedObjective, ConstantDemandCollapsesToUniformExactly) {
  const LatencyMatrix m = net::small_synth(14, 223);
  const quorum::MajorityQuorum majority{5, 3};
  common::Rng rng{71};
  const Placement placement = random_one_to_one(m, 5, rng);
  const std::vector<double> constant(m.size(), 4000.0);
  const LoadAwareObjective weighted =
      LoadAwareObjective::for_demand(std::span<const double>{constant});
  EXPECT_TRUE(weighted.client_weights().empty());
  EXPECT_DOUBLE_EQ(weighted.alpha(), kQuWriteServiceMs * 4000.0);
  const LoadAwareObjective uniform{weighted.alpha()};
  // Bitwise equality: constant demand runs the identical uniform arithmetic.
  EXPECT_EQ(weighted.evaluate(m, majority, placement),
            uniform.evaluate(m, majority, placement));
  const Evaluation via_demand = evaluate_balanced(m, majority, placement, 28.0, constant);
  const Evaluation via_uniform = evaluate_balanced(m, majority, placement, 28.0);
  EXPECT_EQ(via_demand.avg_response_ms, via_uniform.avg_response_ms);
}

TEST(DemandWeightedObjective, DeltaEvaluatorMatchesNaiveUnderDemand) {
  // Demand weights thread through every DeltaEvaluator mode: candidates and
  // committed moves stay in parity with the weighted naive evaluation.
  for (const SystemCase& test_case : all_systems()) {
    const std::size_t n = test_case.system->universe_size();
    const LatencyMatrix m = net::small_synth(n + 8, 227);
    common::Rng rng{73};
    const std::vector<double> demand = random_demand(m.size(), rng);
    const LoadAwareObjective objective{17.0, std::span<const double>{demand}};
    Placement placement = random_one_to_one(m, n, rng);
    DeltaEvaluator eval{m, *test_case.system, placement, objective};
    const double naive0 = objective.evaluate(m, *test_case.system, placement);
    EXPECT_NEAR(eval.objective(), naive0, 1e-9 * std::max(1.0, naive0)) << test_case.label;
    for (int step = 0; step < 10; ++step) {
      const std::size_t u = static_cast<std::size_t>(rng.below(n));
      const std::size_t w = static_cast<std::size_t>(rng.below(m.size()));
      const double predicted = eval.objective_if_moved(u, w);
      eval.apply_move(u, w);
      placement.site_of[u] = w;
      const double naive = objective.evaluate(m, *test_case.system, placement);
      EXPECT_NEAR(predicted, naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
      EXPECT_NEAR(eval.objective(), naive, 1e-9 * std::max(1.0, naive))
          << test_case.label << " step " << step;
    }
  }
}

TEST(DemandWeightedObjective, BestPlacementAndLocalSearchConsumeWeights) {
  const LatencyMatrix m = net::small_synth(20, 229);
  const quorum::GridQuorum grid{3};
  common::Rng rng{79};
  const std::vector<double> demand = random_demand(m.size(), rng);
  const NetworkDelayObjective objective{std::span<const double>{demand}};
  // best_placement scored by the demand-weighted objective matches a serial
  // scan of the same evaluations.
  PlacementSearchResult expected;
  expected.avg_network_delay = std::numeric_limits<double>::infinity();
  for (std::size_t v0 = 0; v0 < m.size(); ++v0) {
    Placement placement = grid_placement_for_client(m, 3, v0);
    const double value = objective.evaluate(m, grid, placement);
    if (value < expected.avg_network_delay) {
      expected.avg_network_delay = value;
      expected.anchor_client = v0;
      expected.placement = std::move(placement);
    }
  }
  const PlacementSearchResult actual = best_placement(
      m, grid, objective, [&](std::size_t v0) { return grid_placement_for_client(m, 3, v0); });
  EXPECT_EQ(actual.anchor_client, expected.anchor_client);
  EXPECT_EQ(actual.placement.site_of, expected.placement.site_of);

  LocalSearchOptions delta_options;
  delta_options.objective = &objective;
  delta_options.threads = 1;
  const LocalSearchResult delta = local_search_placement(m, grid, actual.placement,
                                                         delta_options);
  LocalSearchOptions naive_options = delta_options;
  naive_options.engine = LocalSearchEngine::Naive;
  const LocalSearchResult naive = local_search_placement(m, grid, actual.placement,
                                                         naive_options);
  EXPECT_EQ(delta.placement.site_of, naive.placement.site_of);
  EXPECT_EQ(delta.moves, naive.moves);
}

/// Two custom systems sharing a name but differing in universe size: the
/// memoized load hook must key on (name, n), not the name alone.
class NamedStubSystem final : public quorum::QuorumSystem {
 public:
  explicit NamedStubSystem(std::size_t n) : n_(n) {}
  [[nodiscard]] std::size_t universe_size() const noexcept override { return n_; }
  [[nodiscard]] std::string name() const override { return "cache-collision-stub"; }
  [[nodiscard]] double quorum_count() const noexcept override { return 1.0; }
  [[nodiscard]] std::vector<quorum::Quorum> enumerate_quorums(std::size_t) const override {
    quorum::Quorum all(n_);
    for (std::size_t u = 0; u < n_; ++u) all[u] = u;
    return {all};
  }
  [[nodiscard]] quorum::Quorum best_quorum(std::span<const double> values) const override {
    quorum::check_values_size(*this, values);
    return enumerate_quorums(1)[0];
  }
  [[nodiscard]] double expected_max_uniform(std::span<const double> values) const override {
    quorum::check_values_size(*this, values);
    double worst = 0.0;
    for (double x : values) worst = std::max(worst, x);
    return worst;
  }
  [[nodiscard]] std::vector<double> uniform_load() const override {
    // Size-dependent table so a cache collision is observable.
    return std::vector<double>(n_, static_cast<double>(n_));
  }
  [[nodiscard]] double optimal_load() const override { return 1.0; }
  [[nodiscard]] std::vector<quorum::Quorum> sample_quorums(std::size_t count,
                                                           common::Rng&) const override {
    return std::vector<quorum::Quorum>(count, enumerate_quorums(1)[0]);
  }

 private:
  std::size_t n_;
};

TEST(QuorumLoadHook, CacheKeyIncludesUniverseSize) {
  const NamedStubSystem small{3};
  const NamedStubSystem large{5};
  const std::span<const double> small_load = small.uniform_load_cached();
  const std::span<const double> large_load = large.uniform_load_cached();
  ASSERT_EQ(small_load.size(), 3u);
  ASSERT_EQ(large_load.size(), 5u);  // Pre-fix this returned the 3-entry table.
  for (double x : small_load) EXPECT_DOUBLE_EQ(x, 3.0);
  for (double x : large_load) EXPECT_DOUBLE_EQ(x, 5.0);
  // Memoized per key: repeated calls return identical storage.
  EXPECT_EQ(small.uniform_load_cached().data(), small_load.data());
  EXPECT_EQ(large.uniform_load_cached().data(), large_load.data());
}

TEST(QuorumLoadHook, CachedUniformLoadMatchesVirtual) {
  for (const SystemCase& test_case : all_systems()) {
    const std::vector<double> direct = test_case.system->uniform_load();
    const std::span<const double> cached = test_case.system->uniform_load_cached();
    ASSERT_EQ(cached.size(), direct.size()) << test_case.label;
    for (std::size_t u = 0; u < direct.size(); ++u) {
      EXPECT_DOUBLE_EQ(cached[u], direct[u]) << test_case.label << " element " << u;
    }
    // Second call returns the identical storage (memoized).
    EXPECT_EQ(test_case.system->uniform_load_cached().data(), cached.data());
  }
}

}  // namespace
}  // namespace qp::core
