// Tests for the §8 future-work "collapsed execution" model: a site hosting
// several universe elements executes a touching request once, not once per
// element.
#include <gtest/gtest.h>

#include <vector>

#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"

namespace qp::core {
namespace {

using net::LatencyMatrix;

TEST(Collapsed, ModelsCoincideOnOneToOnePlacements) {
  const LatencyMatrix m = net::small_synth(12, 3);
  const quorum::GridQuorum grid{3};
  const Placement p = best_grid_placement(m, 3).placement;
  ASSERT_TRUE(p.one_to_one());
  const auto per_element =
      site_loads_balanced(grid, p, m.size(), ExecutionModel::PerElement);
  const auto collapsed = site_loads_balanced(grid, p, m.size(), ExecutionModel::Collapsed);
  for (std::size_t w = 0; w < m.size(); ++w) {
    EXPECT_NEAR(per_element[w], collapsed[w], 1e-12);
  }
  const auto closest_pe = site_loads_closest(m, grid, p, ExecutionModel::PerElement);
  const auto closest_c = site_loads_closest(m, grid, p, ExecutionModel::Collapsed);
  for (std::size_t w = 0; w < m.size(); ++w) {
    EXPECT_NEAR(closest_pe[w], closest_c[w], 1e-12);
  }
}

TEST(Collapsed, NeverExceedsPerElementLoad) {
  const LatencyMatrix m = net::small_synth(10, 5);
  const quorum::GridQuorum grid{2};
  // Heavily colocated placement: two sites host two elements each.
  const Placement p{{1, 1, 4, 4}};
  const auto per_element =
      site_loads_balanced(grid, p, m.size(), ExecutionModel::PerElement);
  const auto collapsed = site_loads_balanced(grid, p, m.size(), ExecutionModel::Collapsed);
  for (std::size_t w = 0; w < m.size(); ++w) {
    EXPECT_LE(collapsed[w], per_element[w] + 1e-12);
  }
  // On this placement every quorum touches both sites: collapsed load is
  // exactly 1 on each (every request executes once there), while the
  // per-element load is 1.5.
  EXPECT_NEAR(collapsed[1], 1.0, 1e-12);
  EXPECT_NEAR(collapsed[4], 1.0, 1e-12);
  EXPECT_NEAR(per_element[1], 1.5, 1e-12);
}

TEST(Collapsed, SingletonPlacementLoadIsOne) {
  // All elements on one node: the node executes each request once under the
  // collapsed model (load 1.0), versus |Q| under per-element.
  const LatencyMatrix m = net::small_synth(8, 7);
  const quorum::GridQuorum grid{2};
  const Placement p = singleton_placement(m, grid.universe_size());
  const auto collapsed = site_loads_balanced(grid, p, m.size(), ExecutionModel::Collapsed);
  const auto per_element =
      site_loads_balanced(grid, p, m.size(), ExecutionModel::PerElement);
  const std::size_t median = p.site_of[0];
  EXPECT_NEAR(collapsed[median], 1.0, 1e-12);
  EXPECT_NEAR(per_element[median], 3.0, 1e-12);  // Grid(2) quorums have 3 elements.
}

TEST(Collapsed, MajorityHypergeometricMatchesEnumeration) {
  const quorum::MajorityQuorum majority{7, 4};
  // For a set S of hosted elements, compare the closed form with counting.
  const auto quorums = majority.enumerate_quorums(100);
  for (const std::vector<std::size_t>& hosted :
       {std::vector<std::size_t>{0}, {1, 2}, {0, 3, 6}, {0, 1, 2, 3, 4, 5, 6}}) {
    int touching = 0;
    for (const auto& quorum : quorums) {
      bool touches = false;
      for (std::size_t u : quorum) {
        for (std::size_t s : hosted) touches |= (u == s);
      }
      touching += touches;
    }
    EXPECT_NEAR(majority.uniform_touch_probability(hosted),
                static_cast<double>(touching) / static_cast<double>(quorums.size()), 1e-12)
        << "|S|=" << hosted.size();
  }
}

TEST(Collapsed, ExplicitStrategyCollapsedLoads) {
  ExplicitStrategy s;
  s.quorums = {{0, 1}};  // One quorum containing both elements.
  s.probability = {{1.0}, {1.0}};
  const Placement p{{2, 2}};  // Both elements on site 2.
  const auto collapsed = site_loads_explicit(s, p, 3, ExecutionModel::Collapsed);
  const auto per_element = site_loads_explicit(s, p, 3, ExecutionModel::PerElement);
  EXPECT_NEAR(collapsed[2], 1.0, 1e-12);
  EXPECT_NEAR(per_element[2], 2.0, 1e-12);
}

TEST(Collapsed, ImprovesResponseOnManyToOnePlacements) {
  // §8's claim: under the collapsed model, many-to-one placements get
  // cheaper because colocation stops multiplying load.
  const LatencyMatrix m = net::small_synth(10, 11);
  const quorum::GridQuorum grid{2};
  const Placement p = singleton_placement(m, grid.universe_size());
  const double alpha = kQuWriteServiceMs * 8000;
  const Evaluation per_element =
      evaluate_balanced(m, grid, p, alpha, ExecutionModel::PerElement);
  const Evaluation collapsed =
      evaluate_balanced(m, grid, p, alpha, ExecutionModel::Collapsed);
  EXPECT_LT(collapsed.avg_response_ms, per_element.avg_response_ms);
  // Network delay is a pure distance measure — identical under both models.
  EXPECT_NEAR(collapsed.avg_network_delay_ms, per_element.avg_network_delay_ms, 1e-12);
}

TEST(Collapsed, EvaluateClosestSupportsModel) {
  const LatencyMatrix m = net::small_synth(9, 13);
  const quorum::GridQuorum grid{2};
  const Placement p{{0, 0, 1, 1}};
  const double alpha = 20.0;
  const Evaluation per_element =
      evaluate_closest(m, grid, p, alpha, ExecutionModel::PerElement);
  const Evaluation collapsed = evaluate_closest(m, grid, p, alpha, ExecutionModel::Collapsed);
  EXPECT_LE(collapsed.avg_response_ms, per_element.avg_response_ms + 1e-12);
}

}  // namespace
}  // namespace qp::core
