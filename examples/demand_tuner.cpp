// Demand tuner: sweep client demand and show where the closest/balanced
// crossover falls for a fixed placement, and how much the LP-optimized
// strategy buys in the "gray area" between them (§7's motivation).
//
//   ./demand_tuner [grid_side]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>

#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

int main(int argc, char** argv) {
  using namespace qp;
  const std::size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  const net::LatencyMatrix matrix = net::planetlab50_synth();
  const quorum::GridQuorum grid{side};
  const auto placed = core::best_grid_placement(matrix, side);
  std::cout << "Topology: " << matrix.size() << " sites; system: " << grid.name()
            << "; placement anchored at " << matrix.site_name(placed.anchor_client)
            << "\n\n";

  // Pre-solve the LP at each capacity level once; strategies depend only on
  // the capacities, not on demand (the objective is network delay).
  struct LpChoice {
    double level;
    core::ExplicitStrategy strategy;
  };
  std::vector<LpChoice> lp_choices;
  for (double level : core::uniform_capacity_levels(grid.optimal_load(), 5)) {
    auto lp = core::optimize_access_strategy(
        matrix, grid, placed.placement, core::uniform_capacities(matrix.size(), level));
    if (lp.status == lp::SolveStatus::Optimal) {
      lp_choices.push_back(LpChoice{level, std::move(lp.strategy)});
    }
  }

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "demand   closest  balanced  best-lp   (avg response, ms)\n";
  const char* previous_winner = "";
  for (double demand : {0.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0,
                        32000.0}) {
    const double alpha = core::kQuWriteServiceMs * demand;
    const auto closest = core::evaluate_closest(matrix, grid, placed.placement, alpha);
    const auto balanced = core::evaluate_balanced(matrix, grid, placed.placement, alpha);
    double best_lp = std::numeric_limits<double>::infinity();
    for (const LpChoice& choice : lp_choices) {
      const auto eval = core::evaluate_explicit(matrix, grid, placed.placement, alpha,
                                                choice.strategy);
      best_lp = std::min(best_lp, eval.avg_response_ms);
    }
    const char* winner =
        best_lp < std::min(closest.avg_response_ms, balanced.avg_response_ms)
            ? "lp"
            : (closest.avg_response_ms <= balanced.avg_response_ms ? "closest"
                                                                   : "balanced");
    std::cout << std::setw(6) << demand << "   " << std::setw(7)
              << closest.avg_response_ms << "  " << std::setw(8)
              << balanced.avg_response_ms << "  " << std::setw(7) << best_lp << "   <- "
              << winner;
    if (winner != previous_winner && *previous_winner) std::cout << "  (crossover)";
    previous_winner = winner;
    std::cout << '\n';
  }
  std::cout << "\nReading: closest wins while network delay dominates; balanced wins\n"
               "once per-server load dominates; the LP tracks the better of the two\n"
               "and fills the gray area in between (cf. Figures 6.4 and 7.6).\n";
  return 0;
}
