// Failure drill: inject server outages into the protocol simulation and
// watch the quorum system route around them — the fault-tolerance argument
// for quorums over the singleton (§6's closing point), made concrete.
//
//   ./failure_drill [t]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"
#include "sim/client_sites.hpp"
#include "sim/protocol_sim.hpp"

namespace {

void report(const char* label, const qp::sim::ProtocolSimResult& result) {
  std::cout << "  " << std::left << std::setw(26) << label << std::right
            << " completed " << std::setw(6) << result.completed_requests
            << "  failed " << std::setw(4) << result.failed_requests
            << "  retries " << std::setw(5) << result.total_retries
            << "  avg response " << std::fixed << std::setprecision(1)
            << result.avg_response_ms << " ms\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qp;
  const std::size_t t = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1;

  const net::LatencyMatrix matrix = net::planetlab50_synth();
  const quorum::MajorityQuorum system =
      quorum::make_majority(quorum::MajorityFamily::SimpleMajority, t);
  const auto placed = core::best_majority_placement(matrix, system);
  const auto clients = sim::representative_client_sites(matrix, system, placed.placement, 10);

  std::cout << "Drill: " << system.name() << " (tolerates t = " << t
            << " failures) on " << matrix.size() << " sites\n\n";

  sim::ProtocolSimConfig config;
  config.duration_ms = 8000.0;
  config.warmup_ms = 1000.0;
  config.clients_per_site = 2;
  config.request_timeout_ms = 500.0;
  config.seed = 7;

  // Healthy baseline.
  report("healthy", sim::run_protocol_sim(matrix, system, placed.placement, clients, config));

  // Kill exactly t servers mid-run: the system must keep serving.
  config.outages.clear();
  for (std::size_t i = 0; i < t; ++i) {
    config.outages.push_back({placed.placement.site_of[i], 2000.0, 6000.0});
  }
  report("t servers down (4 s)",
         sim::run_protocol_sim(matrix, system, placed.placement, clients, config));

  // Kill t+1 servers: quorums of size t+1 out of 2t+1 can still form from
  // the t surviving servers... no — only t survive forming no quorum, so
  // requests issued in the outage stall until recovery.
  config.outages.clear();
  for (std::size_t i = 0; i < t + 1; ++i) {
    config.outages.push_back({placed.placement.site_of[i], 2000.0, 6000.0});
  }
  report("t+1 servers down (4 s)",
         sim::run_protocol_sim(matrix, system, placed.placement, clients, config));

  // The singleton under the same drill: one outage removes the service.
  const quorum::SingletonQuorum singleton;
  const core::Placement median = core::singleton_placement(matrix);
  const auto single_clients =
      sim::representative_client_sites(matrix, singleton, median, 10);
  config.outages = {{median.site_of[0], 2000.0, 6000.0}};
  report("singleton, its node down",
         sim::run_protocol_sim(matrix, singleton, median, single_clients, config));

  std::cout << "\nReading: with <= t failures the majority quorum system keeps its\n"
               "throughput (retries route around dead servers); the singleton loses\n"
               "the full outage window. That resilience is what the paper's Figure 6.3\n"
               "prices: a few ms of extra response time at small universe sizes.\n";
  return 0;
}
