// Protocol simulation demo: run the discrete-event Q/U-style simulator
// (§3's testbed stand-in) and watch response time decompose into network
// delay and queueing as client demand rises.
//
//   ./protocol_sim_demo [t] [max_clients]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/placement.hpp"
#include "net/synthetic.hpp"
#include "quorum/majority.hpp"
#include "sim/client_sites.hpp"
#include "sim/protocol_sim.hpp"

int main(int argc, char** argv) {
  using namespace qp;
  const std::size_t t = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2;
  const std::size_t max_clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 100;

  const net::LatencyMatrix matrix = net::planetlab50_synth();
  const quorum::MajorityQuorum system =
      quorum::make_majority(quorum::MajorityFamily::QuThreshold, t);
  std::cout << "Simulating " << system.name() << " (n = " << system.universe_size()
            << ", quorum = " << system.quorum_size() << ") on " << matrix.size()
            << " sites\n";

  const auto placed = core::best_majority_placement(matrix, system);
  const auto clients = sim::representative_client_sites(matrix, system, placed.placement, 10);
  std::cout << "Servers anchored at " << matrix.site_name(placed.anchor_client)
            << "; clients at 10 representative sites\n\n";

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "clients  response  network  queueing  throughput  busy%\n";
  for (std::size_t total = 10; total <= max_clients; total += 30) {
    sim::ProtocolSimConfig config;
    config.clients_per_site = std::max<std::size_t>(1, total / clients.size());
    config.duration_ms = 8000.0;
    config.warmup_ms = 1500.0;
    config.seed = 2006;
    const auto result = sim::run_protocol_sim(matrix, system, placed.placement, clients,
                                              config);
    std::cout << std::setw(7) << config.clients_per_site * clients.size() << "  "
              << std::setw(8) << result.avg_response_ms << "  " << std::setw(7)
              << result.avg_network_delay_ms << "  " << std::setw(8)
              << result.avg_response_ms - result.avg_network_delay_ms << "  "
              << std::setw(10) << result.throughput_rps << "  " << std::setw(5)
              << 100.0 * result.avg_server_busy_fraction << '\n';
  }
  std::cout << "\nAs in Figure 3.2b: network delay stays flat while queueing grows\n"
               "with client demand, eventually dominating response time.\n";
  return 0;
}
