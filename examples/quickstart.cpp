// Quickstart: build a wide-area topology, place a Grid quorum system on it,
// and compare the closest / balanced / LP-optimized access strategies.
//
//   ./quickstart [path/to/latency_matrix.txt]
//
// Without an argument it uses the synthetic Planetlab-50 stand-in topology.
#include <iostream>

#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/matrix_io.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"

int main(int argc, char** argv) {
  using namespace qp;

  // 1. A topology: a symmetric RTT matrix between candidate proxy sites.
  const net::LatencyMatrix matrix =
      argc > 1 ? net::read_matrix_file(argv[1]) : net::planetlab50_synth();
  std::cout << "Topology: " << matrix.size() << " sites\n";

  // 2. A quorum system: 4x4 Grid (16 logical servers, quorums of 7).
  const quorum::GridQuorum grid{4};
  std::cout << "Quorum system: " << grid.name() << ", " << grid.quorum_count()
            << " quorums, optimal load " << grid.optimal_load() << "\n";

  // 3. Place it: the one-to-one placement minimizing average network delay.
  const core::PlacementSearchResult placed = core::best_grid_placement(matrix, 4);
  std::cout << "Placement anchored at " << matrix.site_name(placed.anchor_client)
            << ", avg uniform network delay " << placed.avg_network_delay << " ms\n";
  std::cout << "Proxy sites:";
  for (std::size_t site : placed.placement.support_set()) {
    std::cout << ' ' << matrix.site_name(site);
  }
  std::cout << "\n\n";

  // 4. Evaluate the response-time model at moderate demand.
  const double alpha = core::kQuWriteServiceMs * 4000;  // 4000 requests "in flight".
  const core::Evaluation closest =
      core::evaluate_closest(matrix, grid, placed.placement, alpha);
  const core::Evaluation balanced =
      core::evaluate_balanced(matrix, grid, placed.placement, alpha);
  std::cout << "closest  strategy: response " << closest.avg_response_ms
            << " ms (network " << closest.avg_network_delay_ms << " ms)\n";
  std::cout << "balanced strategy: response " << balanced.avg_response_ms
            << " ms (network " << balanced.avg_network_delay_ms << " ms)\n";

  // 5. Do better than both: LP-optimized per-client strategies under a
  //    capacity cap halfway between L_opt and 1.
  const double cap = (grid.optimal_load() + 1.0) / 2.0;
  const core::StrategyLpResult lp = core::optimize_access_strategy(
      matrix, grid, placed.placement, core::uniform_capacities(matrix.size(), cap));
  if (lp.status == lp::SolveStatus::Optimal) {
    const core::Evaluation optimized =
        core::evaluate_explicit(matrix, grid, placed.placement, alpha, lp.strategy);
    std::cout << "LP-optimized strategy (cap " << cap << "): response "
              << optimized.avg_response_ms << " ms (network "
              << optimized.avg_network_delay_ms << " ms)\n";
  } else {
    std::cout << "LP infeasible at cap " << cap << "\n";
  }
  return 0;
}
