// Edge-service planner: given a topology and an expected client demand,
// recommend (a) which quorum system and universe size to deploy, (b) which
// sites should host the proxies, and (c) how clients should route.
//
// This automates the paper's decision procedure: §6 says small quorums and
// modest universes win at low demand; §7 says spreading load wins at high
// demand; the LP finds the best routing for anything in between.
//
//   ./edge_planner [client_demand] [path/to/matrix.txt]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <vector>

#include "core/capacity.hpp"
#include "core/placement.hpp"
#include "core/response.hpp"
#include "core/strategy.hpp"
#include "net/matrix_io.hpp"
#include "net/synthetic.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/singleton.hpp"

namespace {

struct Candidate {
  std::string description;
  double response_ms = std::numeric_limits<double>::infinity();
  std::string strategy;
  std::vector<std::size_t> sites;
};

void consider(Candidate& best, const std::string& description, double response,
              const std::string& strategy, const std::vector<std::size_t>& sites) {
  if (response < best.response_ms) {
    best = Candidate{description, response, strategy, sites};
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qp;
  const double demand = argc > 1 ? std::atof(argv[1]) : 4000.0;
  const net::LatencyMatrix matrix =
      argc > 2 ? net::read_matrix_file(argv[2]) : net::planetlab50_synth();
  const double alpha = core::kQuWriteServiceMs * demand;

  std::cout << "Planning an edge deployment over " << matrix.size()
            << " sites at client demand " << demand << " (alpha = " << alpha << " ms)\n\n";
  std::cout << std::fixed << std::setprecision(1);

  Candidate best;

  // Singleton baseline.
  {
    const quorum::SingletonQuorum s;
    const core::Placement p = core::singleton_placement(matrix);
    const core::Evaluation eval = core::evaluate_closest(matrix, s, p, alpha);
    std::cout << "  Singleton @ " << matrix.site_name(p.site_of[0]) << ": "
              << eval.avg_response_ms << " ms\n";
    consider(best, "Singleton", eval.avg_response_ms, "closest", p.support_set());
  }

  // Grid systems with closest / balanced / LP strategies.
  for (std::size_t k = 2; k * k <= matrix.size() && k <= 7; ++k) {
    const quorum::GridQuorum grid{k};
    const auto placed = core::best_grid_placement(matrix, k);
    const auto closest = core::evaluate_closest(matrix, grid, placed.placement, alpha);
    const auto balanced = core::evaluate_balanced(matrix, grid, placed.placement, alpha);
    consider(best, grid.name(), closest.avg_response_ms, "closest",
             placed.placement.support_set());
    consider(best, grid.name(), balanced.avg_response_ms, "balanced",
             placed.placement.support_set());

    // LP with the paper's §7 capacity sweep (coarse: 4 levels).
    double best_lp = std::numeric_limits<double>::infinity();
    for (double level : core::uniform_capacity_levels(grid.optimal_load(), 4)) {
      const auto lp = core::optimize_access_strategy(
          matrix, grid, placed.placement, core::uniform_capacities(matrix.size(), level));
      if (lp.status != lp::SolveStatus::Optimal) continue;
      const auto eval =
          core::evaluate_explicit(matrix, grid, placed.placement, alpha, lp.strategy);
      best_lp = std::min(best_lp, eval.avg_response_ms);
      consider(best, grid.name(), eval.avg_response_ms, "lp-optimized",
               placed.placement.support_set());
    }
    std::cout << "  " << grid.name() << ": closest " << closest.avg_response_ms
              << " ms, balanced " << balanced.avg_response_ms << " ms, lp "
              << best_lp << " ms\n";
  }

  // Small majorities (fault-tolerant alternative).
  for (std::size_t t = 1; t <= 3 && 2 * t + 1 <= matrix.size(); ++t) {
    const auto majority =
        quorum::make_majority(quorum::MajorityFamily::SimpleMajority, t);
    const auto placed = core::best_majority_placement(matrix, majority);
    const auto closest = core::evaluate_closest(matrix, majority, placed.placement, alpha);
    const auto balanced =
        core::evaluate_balanced(matrix, majority, placed.placement, alpha);
    std::cout << "  " << majority.name() << ": closest " << closest.avg_response_ms
              << " ms, balanced " << balanced.avg_response_ms << " ms\n";
    consider(best, majority.name(), closest.avg_response_ms, "closest",
             placed.placement.support_set());
    consider(best, majority.name(), balanced.avg_response_ms, "balanced",
             placed.placement.support_set());
  }

  std::cout << "\nRecommendation: " << best.description << " with the " << best.strategy
            << " strategy (" << best.response_ms << " ms average response)\n";
  std::cout << "Deploy proxies at:";
  for (std::size_t site : best.sites) std::cout << ' ' << matrix.site_name(site);
  std::cout << '\n';
  return 0;
}
